#include <gtest/gtest.h>

#include "analysis/tree_analysis.hpp"
#include "sim/rng.hpp"
#include "workload/taskset_gen.hpp"

namespace bluescale::analysis {
namespace {

std::vector<task_set> uniform_clients(std::uint32_t n,
                                      const rt_task& task,
                                      std::uint32_t tasks_per_client = 1) {
    std::vector<task_set> out(n);
    for (auto& s : out) {
        for (std::uint32_t i = 0; i < tasks_per_client; ++i) {
            s.push_back(task);
        }
    }
    return out;
}

TEST(tree_analysis, feasible_for_light_uniform_load) {
    // 16 clients, each one task (200, 4): total U = 0.32.
    const auto sel =
        select_tree_interfaces(uniform_clients(16, {200, 4}));
    EXPECT_TRUE(sel.feasible) << sel.failure;
    EXPECT_LE(sel.root_bandwidth, 1.0 + 1e-9);
    EXPECT_GT(sel.root_bandwidth, 0.32);
}

TEST(tree_analysis, levels_match_shape) {
    const auto sel =
        select_tree_interfaces(uniform_clients(16, {200, 4}));
    ASSERT_EQ(sel.levels.size(), 2u);
    EXPECT_EQ(sel.levels[0].size(), 1u);
    EXPECT_EQ(sel.levels[1].size(), 4u);
}

TEST(tree_analysis, every_engaged_port_schedulable) {
    const auto clients = uniform_clients(16, {300, 6}, 2);
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible) << sel.failure;
    // Leaf level: each port's interface must schedule its client's tasks.
    for (std::uint32_t y = 0; y < 4; ++y) {
        for (std::uint32_t p = 0; p < 4; ++p) {
            const auto& iface = sel.port_interface(1, y, p);
            ASSERT_TRUE(iface.has_value());
            EXPECT_EQ(is_schedulable(clients[4 * y + p], *iface),
                      sched_result::schedulable);
        }
    }
}

TEST(tree_analysis, parent_interfaces_schedule_child_servers) {
    const auto clients = uniform_clients(16, {300, 6}, 2);
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible) << sel.failure;
    for (std::uint32_t p = 0; p < 4; ++p) {
        const auto& iface = sel.port_interface(0, 0, p);
        ASSERT_TRUE(iface.has_value());
        task_set servers;
        for (const auto& child_port : sel.levels[1][p].ports) {
            ASSERT_TRUE(child_port.has_value());
            if (child_port->budget > 0) {
                servers.push_back({child_port->period, child_port->budget});
            }
        }
        EXPECT_EQ(is_schedulable(servers, *iface),
                  sched_result::schedulable);
    }
}

TEST(tree_analysis, empty_clients_get_null_interfaces) {
    auto clients = uniform_clients(16, {200, 4});
    clients[5].clear();
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible) << sel.failure;
    const auto& iface = sel.port_interface(1, 1, 1); // client 5
    ASSERT_TRUE(iface.has_value());
    EXPECT_EQ(iface->budget, 0u);
}

TEST(tree_analysis, padded_clients_beyond_count_are_null) {
    // 6 clients pad to a 16-capacity tree.
    const auto sel = select_tree_interfaces(uniform_clients(6, {100, 5}));
    ASSERT_TRUE(sel.feasible) << sel.failure;
    const auto& unused = sel.port_interface(1, 2, 0); // client 8
    ASSERT_TRUE(unused.has_value());
    EXPECT_EQ(unused->budget, 0u);
}

TEST(tree_analysis, overload_reported_infeasible) {
    // 16 clients x U=0.125 each = 2.0 total: the root must refuse.
    const auto sel = select_tree_interfaces(uniform_clients(16, {40, 5}));
    EXPECT_FALSE(sel.feasible);
    EXPECT_FALSE(sel.failure.empty());
}

TEST(tree_analysis, sixty_four_client_tree) {
    const auto sel =
        select_tree_interfaces(uniform_clients(64, {800, 4}));
    EXPECT_TRUE(sel.feasible) << sel.failure;
    ASSERT_EQ(sel.levels.size(), 3u);
    EXPECT_EQ(sel.levels[2].size(), 16u);
}

TEST(tree_analysis, realistic_random_workload_70pct) {
    rng r(7);
    auto sets =
        workload::make_client_tasksets(r, 16, 0.70, 0.70);
    std::vector<task_set> rt;
    for (const auto& s : sets) rt.push_back(workload::to_rt_tasks(s));
    const auto sel = select_tree_interfaces(rt);
    EXPECT_TRUE(sel.feasible) << sel.failure;
    EXPECT_LE(sel.root_bandwidth, 1.0 + 1e-9);
}

TEST(tree_analysis_update, incremental_matches_full_recompute) {
    auto clients = uniform_clients(16, {200, 4});
    auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);

    auto clients_copy = clients;
    update_client_tasks(sel, clients, 6, {{100, 8}});
    clients_copy[6] = {{100, 8}};
    const auto full = select_tree_interfaces(clients_copy);

    ASSERT_EQ(sel.feasible, full.feasible);
    for (std::uint32_t l = 0; l < sel.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < sel.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
                EXPECT_EQ(sel.levels[l][y].ports[p],
                          full.levels[l][y].ports[p])
                    << "SE(" << l << "," << y << ") port " << p;
            }
        }
    }
}

TEST(tree_analysis_update, touches_only_path_ses) {
    auto clients = uniform_clients(64, {800, 4});
    auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    // The paper's property (Sec. 3.2): a task change updates only the SEs
    // on that client's request path -- at most leaf_level+1 of them.
    const auto changed =
        update_client_tasks(sel, clients, 17, {{400, 8}});
    EXPECT_LE(changed, sel.shape.leaf_level + 1);
    EXPECT_GE(changed, 1u);
}

TEST(tree_analysis_update, off_path_interfaces_untouched) {
    auto clients = uniform_clients(64, {800, 4});
    auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    const auto before = sel.levels;
    update_client_tasks(sel, clients, 0, {{400, 8}});
    // Client 0's path: SE(2,0) -> SE(1,0) -> SE(0,0). Everything else at
    // the leaf/mid levels must be bit-identical.
    for (std::uint32_t y = 1; y < 16; ++y) {
        for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
            EXPECT_EQ(sel.levels[2][y].ports[p], before[2][y].ports[p]);
        }
    }
    for (std::uint32_t y = 1; y < 4; ++y) {
        for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
            EXPECT_EQ(sel.levels[1][y].ports[p], before[1][y].ports[p]);
        }
    }
}

TEST(tree_analysis_update, can_make_system_infeasible_and_back) {
    auto clients = uniform_clients(16, {200, 4});
    auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    // Overload one client.
    update_client_tasks(sel, clients, 3, {{10, 11}});
    EXPECT_FALSE(sel.feasible);
    // Restore.
    update_client_tasks(sel, clients, 3, {{200, 4}});
    EXPECT_TRUE(sel.feasible) << sel.failure;
}

} // namespace
} // namespace bluescale::analysis
