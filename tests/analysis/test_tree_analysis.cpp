#include <gtest/gtest.h>

#include "analysis/tree_analysis.hpp"
#include "sim/rng.hpp"
#include "workload/taskset_gen.hpp"

namespace bluescale::analysis {
namespace {

/// evaluate + apply in one step (the migrated shape of the deprecated
/// mutating update_client_tasks); returns the SEs-changed count.
std::uint32_t apply_update(tree_selection& sel,
                           std::vector<task_set>& clients,
                           std::uint32_t client, task_set new_tasks) {
    auto update =
        evaluate_client_update(sel, clients, client, std::move(new_tasks));
    const std::uint32_t changed = update.ses_changed;
    apply_client_update(std::move(update), sel, clients);
    return changed;
}

std::vector<task_set> uniform_clients(std::uint32_t n,
                                      const rt_task& task,
                                      std::uint32_t tasks_per_client = 1) {
    std::vector<task_set> out(n);
    for (auto& s : out) {
        for (std::uint32_t i = 0; i < tasks_per_client; ++i) {
            s.push_back(task);
        }
    }
    return out;
}

TEST(tree_analysis, feasible_for_light_uniform_load) {
    // 16 clients, each one task (200, 4): total U = 0.32.
    const auto sel =
        select_tree_interfaces(uniform_clients(16, {200, 4}));
    EXPECT_TRUE(sel.feasible) << sel.failure.to_string();
    EXPECT_LE(sel.root_bandwidth, 1.0 + 1e-9);
    EXPECT_GT(sel.root_bandwidth, 0.32);
}

TEST(tree_analysis, levels_match_shape) {
    const auto sel =
        select_tree_interfaces(uniform_clients(16, {200, 4}));
    ASSERT_EQ(sel.levels.size(), 2u);
    EXPECT_EQ(sel.levels[0].size(), 1u);
    EXPECT_EQ(sel.levels[1].size(), 4u);
}

TEST(tree_analysis, every_engaged_port_schedulable) {
    const auto clients = uniform_clients(16, {300, 6}, 2);
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible) << sel.failure.to_string();
    // Leaf level: each port's interface must schedule its client's tasks.
    for (std::uint32_t y = 0; y < 4; ++y) {
        for (std::uint32_t p = 0; p < 4; ++p) {
            const auto& iface = sel.port_interface(1, y, p);
            ASSERT_TRUE(iface.has_value());
            EXPECT_EQ(is_schedulable(clients[4 * y + p], *iface),
                      sched_result::schedulable);
        }
    }
}

TEST(tree_analysis, parent_interfaces_schedule_child_servers) {
    const auto clients = uniform_clients(16, {300, 6}, 2);
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible) << sel.failure.to_string();
    for (std::uint32_t p = 0; p < 4; ++p) {
        const auto& iface = sel.port_interface(0, 0, p);
        ASSERT_TRUE(iface.has_value());
        task_set servers;
        for (const auto& child_port : sel.levels[1][p].ports) {
            ASSERT_TRUE(child_port.has_value());
            if (child_port->budget > 0) {
                servers.push_back({child_port->period, child_port->budget});
            }
        }
        EXPECT_EQ(is_schedulable(servers, *iface),
                  sched_result::schedulable);
    }
}

TEST(tree_analysis, empty_clients_get_null_interfaces) {
    auto clients = uniform_clients(16, {200, 4});
    clients[5].clear();
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible) << sel.failure.to_string();
    const auto& iface = sel.port_interface(1, 1, 1); // client 5
    ASSERT_TRUE(iface.has_value());
    EXPECT_EQ(iface->budget, 0u);
}

TEST(tree_analysis, padded_clients_beyond_count_are_null) {
    // 6 clients pad to a 16-capacity tree.
    const auto sel = select_tree_interfaces(uniform_clients(6, {100, 5}));
    ASSERT_TRUE(sel.feasible) << sel.failure.to_string();
    const auto& unused = sel.port_interface(1, 2, 0); // client 8
    ASSERT_TRUE(unused.has_value());
    EXPECT_EQ(unused->budget, 0u);
}

TEST(tree_analysis, overload_reported_infeasible) {
    // 16 clients x U=0.125 each = 2.0 total: the root must refuse.
    const auto sel = select_tree_interfaces(uniform_clients(16, {40, 5}));
    EXPECT_FALSE(sel.feasible);
    EXPECT_FALSE(sel.failure.empty());
}

TEST(tree_analysis, sixty_four_client_tree) {
    const auto sel =
        select_tree_interfaces(uniform_clients(64, {800, 4}));
    EXPECT_TRUE(sel.feasible) << sel.failure.to_string();
    ASSERT_EQ(sel.levels.size(), 3u);
    EXPECT_EQ(sel.levels[2].size(), 16u);
}

TEST(tree_analysis, realistic_random_workload_70pct) {
    rng r(7);
    auto sets =
        workload::make_client_tasksets(r, 16, 0.70, 0.70);
    std::vector<task_set> rt;
    for (const auto& s : sets) rt.push_back(workload::to_rt_tasks(s));
    const auto sel = select_tree_interfaces(rt);
    EXPECT_TRUE(sel.feasible) << sel.failure.to_string();
    EXPECT_LE(sel.root_bandwidth, 1.0 + 1e-9);
}

TEST(tree_analysis_update, incremental_matches_full_recompute) {
    auto clients = uniform_clients(16, {200, 4});
    auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);

    auto clients_copy = clients;
    apply_update(sel, clients, 6, {{100, 8}});
    clients_copy[6] = {{100, 8}};
    const auto full = select_tree_interfaces(clients_copy);

    ASSERT_EQ(sel.feasible, full.feasible);
    for (std::uint32_t l = 0; l < sel.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < sel.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
                EXPECT_EQ(sel.levels[l][y].ports[p],
                          full.levels[l][y].ports[p])
                    << "SE(" << l << "," << y << ") port " << p;
            }
        }
    }
}

TEST(tree_analysis_update, touches_only_path_ses) {
    auto clients = uniform_clients(64, {800, 4});
    auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    // The paper's property (Sec. 3.2): a task change updates only the SEs
    // on that client's request path -- at most leaf_level+1 of them.
    const auto changed = apply_update(sel, clients, 17, {{400, 8}});
    EXPECT_LE(changed, sel.shape.leaf_level + 1);
    EXPECT_GE(changed, 1u);
}

TEST(tree_analysis_update, off_path_interfaces_untouched) {
    auto clients = uniform_clients(64, {800, 4});
    auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    const auto before = sel.levels;
    apply_update(sel, clients, 0, {{400, 8}});
    // Client 0's path: SE(2,0) -> SE(1,0) -> SE(0,0). Everything else at
    // the leaf/mid levels must be bit-identical.
    for (std::uint32_t y = 1; y < 16; ++y) {
        for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
            EXPECT_EQ(sel.levels[2][y].ports[p], before[2][y].ports[p]);
        }
    }
    for (std::uint32_t y = 1; y < 4; ++y) {
        for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
            EXPECT_EQ(sel.levels[1][y].ports[p], before[1][y].ports[p]);
        }
    }
}

TEST(tree_analysis_accounting, unused_ports_add_zero_to_every_bandwidth_sum) {
    // Satellite audit (se_interfaces::total_bandwidth): an unused port is
    // engaged with {0, 0}, and the Pi == 0 convention makes its bandwidth
    // exactly 0 -- so level sums and the root check see only real load.
    const auto sel = select_tree_interfaces(uniform_clients(5, {100, 5}));
    ASSERT_TRUE(sel.feasible) << sel.failure.to_string();

    const auto& shape = sel.shape;
    double engaged_sum = 0.0;
    for (std::uint32_t y = 0; y < sel.levels[shape.leaf_level].size(); ++y) {
        const auto& se = sel.levels[shape.leaf_level][y];
        double se_sum = 0.0;
        for (std::uint32_t p = 0; p < k_se_fanin; ++p) {
            const auto& iface = se.ports[p];
            ASSERT_TRUE(iface.has_value());
            if (4 * y + p >= 5) {
                // Unused (padded) port: engaged {0,0}, bandwidth 0.
                EXPECT_EQ(iface->period, 0u);
                EXPECT_EQ(iface->budget, 0u);
                EXPECT_EQ(iface->bandwidth(), 0.0);
            } else {
                EXPECT_GT(iface->bandwidth(), 0.0);
            }
            se_sum += iface->bandwidth();
        }
        // total_bandwidth() is exactly the engaged-port sum: the {0,0}
        // ports neither add nor subtract.
        EXPECT_EQ(se.total_bandwidth(), se_sum);
        engaged_sum += se_sum;
    }

    // The root check sums the level-1 server bandwidths; with 5 clients
    // three of the four level-1 subtrees are fully idle and must
    // contribute nothing.
    double root_sum = 0.0;
    for (const auto& se : sel.levels[0]) root_sum += se.total_bandwidth();
    EXPECT_EQ(sel.root_bandwidth, root_sum);
    // Server tasks only ever over-provision: the root carries at least
    // the leaf levels' engaged bandwidth, never the padded ports' zeros.
    EXPECT_GE(sel.root_bandwidth, engaged_sum - 1e-9);
}

TEST(tree_analysis_accounting, failed_port_sums_zero_but_marks_infeasible) {
    // A failed port (nullopt) also contributes 0 to every bandwidth sum
    // -- indistinguishable from an unused port by the sums alone. The
    // regression guarded here: feasibility must come from the structured
    // failure, never from a bandwidth check that the silent 0 would pass.
    auto clients = uniform_clients(16, {200, 4});
    clients[3] = {{10, 11}}; // U > 1: no interface can serve it
    const auto sel = select_tree_interfaces(clients);

    EXPECT_FALSE(sel.feasible);
    EXPECT_EQ(sel.failure.reason, selection_failure_reason::port_infeasible);
    EXPECT_EQ(sel.failure.level, sel.shape.leaf_level);
    EXPECT_EQ(sel.failure.order, sel.shape.leaf_se_of_client(3));
    EXPECT_EQ(sel.failure.port, sel.shape.leaf_port_of_client(3));

    const auto& se = sel.levels[sel.shape.leaf_level][sel.failure.order];
    EXPECT_FALSE(se.ports[sel.failure.port].has_value());
    // The sums still add up (the failed port reads as 0)...
    EXPECT_LE(sel.root_bandwidth, 1.0 + 1e-9);
    // ...which is exactly why the root check alone must never be the
    // feasibility verdict.
}

TEST(selection_failure_report, reports_the_exact_port_with_old_wording) {
    auto clients = uniform_clients(16, {200, 4});
    clients[6] = {{10, 11}};
    const auto sel = select_tree_interfaces(clients);
    ASSERT_EQ(sel.failure.reason,
              selection_failure_reason::port_infeasible);
    EXPECT_EQ(sel.failure.to_string(),
              "no feasible interface for SE(1,1) port 2");
}

TEST(selection_failure_report, root_overutilization_is_structured) {
    // Every client schedulable alone, but the total exceeds the root.
    const auto sel = select_tree_interfaces(uniform_clients(16, {40, 5}));
    ASSERT_FALSE(sel.feasible);
    EXPECT_EQ(sel.failure.reason,
              selection_failure_reason::root_overutilized);
    EXPECT_EQ(sel.failure.to_string(),
              "root resource over-utilized: total level-1 server "
              "bandwidth exceeds 1");
}

TEST(selection_failure_report, feasible_tree_reports_none) {
    const auto sel = select_tree_interfaces(uniform_clients(16, {200, 4}));
    ASSERT_TRUE(sel.feasible);
    EXPECT_TRUE(sel.failure.empty());
    EXPECT_EQ(sel.failure, selection_failure{});
    EXPECT_EQ(sel.failure.to_string(), "");
}

TEST(tree_analysis_update, can_make_system_infeasible_and_back) {
    auto clients = uniform_clients(16, {200, 4});
    auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    // Overload one client.
    apply_update(sel, clients, 3, {{10, 11}});
    EXPECT_FALSE(sel.feasible);
    // Restore.
    apply_update(sel, clients, 3, {{200, 4}});
    EXPECT_TRUE(sel.feasible) << sel.failure.to_string();
}

} // namespace
} // namespace bluescale::analysis
