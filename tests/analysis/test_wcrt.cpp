#include <gtest/gtest.h>

#include "analysis/wcrt.hpp"

namespace bluescale::analysis {
namespace {

TEST(inverse_sbf, zero_demand_is_zero) {
    EXPECT_EQ(inverse_sbf(0, {10, 3}), 0u);
}

TEST(inverse_sbf, no_supply_when_budget_zero) {
    EXPECT_EQ(inverse_sbf(1, {10, 0}), k_no_supply);
    EXPECT_EQ(inverse_sbf(1, {0, 0}), k_no_supply);
}

TEST(inverse_sbf, dedicated_resource_is_identity) {
    const resource_interface full{5, 5};
    for (std::uint64_t k = 1; k <= 25; ++k) {
        EXPECT_EQ(inverse_sbf(k, full), k);
    }
}

TEST(inverse_sbf, first_unit_arrives_after_blackout) {
    // (Pi=10, Theta=4): sbf becomes 1 at t = 2(Pi-Theta)+1 = 13.
    EXPECT_EQ(inverse_sbf(1, {10, 4}), 13u);
}

class inverse_sbf_property
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(inverse_sbf_property, is_exact_inverse) {
    const auto [pi, theta] = GetParam();
    const resource_interface r{pi, theta};
    for (std::uint64_t k = 1; k <= 4 * theta + 2; ++k) {
        const std::uint64_t t = inverse_sbf(k, r);
        ASSERT_NE(t, k_no_supply);
        EXPECT_GE(sbf(t, r), k) << "k=" << k;
        ASSERT_GT(t, 0u);
        EXPECT_LT(sbf(t - 1, r), k) << "k=" << k << " (not minimal)";
    }
}

TEST_P(inverse_sbf_property, monotone_in_demand) {
    const auto [pi, theta] = GetParam();
    const resource_interface r{pi, theta};
    std::uint64_t prev = 0;
    for (std::uint64_t k = 1; k <= 3 * theta; ++k) {
        const std::uint64_t t = inverse_sbf(k, r);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    interfaces, inverse_sbf_property,
    ::testing::Values(std::make_tuple(4u, 1u), std::make_tuple(5u, 2u),
                      std::make_tuple(10u, 9u), std::make_tuple(16u, 5u),
                      std::make_tuple(100u, 37u)));

TEST(wcrt_bound, covers_every_level_of_the_path) {
    std::vector<task_set> clients(16, task_set{{200, 4}});
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    const auto bound = wcrt_bound(sel, 0, 8);
    EXPECT_TRUE(bound.bounded);
    EXPECT_EQ(bound.per_level_units.size(), 2u); // leaf + root
    for (auto u : bound.per_level_units) EXPECT_GT(u, 0u);
    EXPECT_GT(bound.memory_cycles, 0u);
    EXPECT_GT(bound.total_cycles(4), 0u);
}

TEST(wcrt_bound, sixty_four_clients_three_levels) {
    std::vector<task_set> clients(64, task_set{{800, 4}});
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    const auto bound = wcrt_bound(sel, 63, 8);
    EXPECT_TRUE(bound.bounded);
    EXPECT_EQ(bound.per_level_units.size(), 3u);
}

TEST(wcrt_bound, unconfigured_port_reports_unbounded) {
    std::vector<task_set> clients(16, task_set{{200, 4}});
    clients[3].clear(); // zero-bandwidth port
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    const auto bound = wcrt_bound(sel, 3, 8);
    EXPECT_FALSE(bound.bounded);
}

TEST(wcrt_bound, deeper_buffers_mean_larger_bound) {
    std::vector<task_set> clients(16, task_set{{200, 4}});
    const auto sel = select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    const auto small = wcrt_bound(sel, 0, 4);
    const auto large = wcrt_bound(sel, 0, 16);
    EXPECT_LT(small.total_cycles(4), large.total_cycles(4));
}

TEST(wcrt_bound, higher_bandwidth_interface_shrinks_bound) {
    // Same structure, heavier load -> wider interfaces -> faster drains.
    std::vector<task_set> light(16, task_set{{800, 4}});
    std::vector<task_set> heavy(16, task_set{{100, 4}});
    const auto sel_light = select_tree_interfaces(light);
    const auto sel_heavy = select_tree_interfaces(heavy);
    ASSERT_TRUE(sel_light.feasible);
    ASSERT_TRUE(sel_heavy.feasible);
    const auto b_light = wcrt_bound(sel_light, 0, 8);
    const auto b_heavy = wcrt_bound(sel_heavy, 0, 8);
    EXPECT_LT(b_heavy.total_cycles(4), b_light.total_cycles(4));
}

} // namespace
} // namespace bluescale::analysis
