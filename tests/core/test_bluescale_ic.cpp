#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/bluescale_ic.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace bluescale::core {
namespace {

mem_request req(request_id_t id, client_id_t client, cycle_t deadline,
                std::uint64_t addr = 0) {
    mem_request r;
    r.id = id;
    r.client = client;
    r.addr = addr;
    r.abs_deadline = deadline;
    r.level_deadline = deadline;
    return r;
}

struct rig {
    explicit rig(std::uint32_t n, bluescale_config cfg = {})
        : net(n, cfg) {
        net.attach_memory(mem);
        net.set_response_handler(
            [this](mem_request&& r) { completed.push_back(std::move(r)); });
        sim.add(net);
        sim.add(mem);
    }
    void run_until_drained(cycle_t max = 20'000) {
        sim.run_until([this] { return net.in_flight() == 0; }, max);
    }
    bluescale_ic net;
    memory_controller mem;
    std::vector<mem_request> completed;
    simulator sim;
};

TEST(bluescale_ic, shape_matches_paper_figures) {
    bluescale_ic ic16(16);
    EXPECT_EQ(ic16.total_ses(), 5u);   // Fig. 2(a)
    EXPECT_EQ(ic16.depth_of(0), 2u);
    bluescale_ic ic64(64);
    EXPECT_EQ(ic64.total_ses(), 21u);  // Fig. 2(d)
    EXPECT_EQ(ic64.depth_of(0), 3u);
}

TEST(bluescale_ic, single_request_round_trip) {
    rig r(16);
    r.net.client_push(5, req(1, 5, 10'000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 1u);
    EXPECT_EQ(r.completed[0].client, 5u);
}

TEST(bluescale_ic, all_clients_served_16) {
    rig r(16);
    for (client_id_t c = 0; c < 16; ++c) {
        ASSERT_TRUE(r.net.client_can_accept(c));
        r.net.client_push(c, req(c, c, 100'000, c * 4096));
    }
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 16u);
    std::set<client_id_t> seen;
    for (const auto& c : r.completed) seen.insert(c.client);
    EXPECT_EQ(seen.size(), 16u);
}

TEST(bluescale_ic, all_clients_served_64) {
    rig r(64);
    for (client_id_t c = 0; c < 64; ++c) {
        r.net.client_push(c, req(c, c, 1'000'000, c * 4096));
    }
    r.run_until_drained(100'000);
    EXPECT_EQ(r.completed.size(), 64u);
}

TEST(bluescale_ic, non_power_of_four_clients) {
    rig r(6); // pads to 16-capacity tree
    for (client_id_t c = 0; c < 6; ++c) {
        r.net.client_push(c, req(c, c, 100'000, c * 4096));
    }
    r.run_until_drained();
    EXPECT_EQ(r.completed.size(), 6u);
}

TEST(bluescale_ic, responses_routed_correctly) {
    rig r(16);
    for (client_id_t c = 0; c < 16; ++c) {
        r.net.client_push(c, req(1000 + c, c, 100'000, c * 4096));
    }
    r.run_until_drained();
    for (const auto& done : r.completed) {
        EXPECT_EQ(done.id, 1000u + done.client);
    }
}

TEST(bluescale_ic, configure_from_tree_selection) {
    std::vector<analysis::task_set> clients(16);
    for (auto& s : clients) s.push_back({200, 4});
    const auto sel = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);

    bluescale_config cfg;
    rig r(16, cfg);
    r.net.configure(sel);
    // Every leaf port's server must carry the selected parameters.
    for (std::uint32_t y = 0; y < 4; ++y) {
        for (std::uint32_t p = 0; p < 4; ++p) {
            const auto& iface = sel.port_interface(1, y, p);
            ASSERT_TRUE(iface.has_value());
            const auto& server = r.net.se_at(1, y).scheduler().server(p);
            EXPECT_EQ(server.period(), iface->period);
            EXPECT_EQ(server.budget(), iface->budget);
        }
    }
}

TEST(bluescale_ic, configured_fabric_still_delivers_everything) {
    std::vector<analysis::task_set> clients(16);
    for (auto& s : clients) s.push_back({200, 4});
    const auto sel = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);

    rig r(16);
    r.net.configure(sel);
    std::uint64_t pushed = 0;
    for (cycle_t now = 0; now < 8000; ++now) {
        for (client_id_t c = 0; c < 16; ++c) {
            if (now % 800 == c * 50 && r.net.client_can_accept(c)) {
                const std::uint64_t id = pushed++;
                // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
                r.net.client_push(c, req(id, c, now + 2000, id * 64));
            }
        }
        r.sim.step();
    }
    r.run_until_drained(100'000);
    EXPECT_EQ(r.completed.size(), pushed);
}

TEST(bluescale_ic, no_loss_under_saturating_load) {
    rig r(16);
    std::uint64_t pushed = 0;
    for (cycle_t now = 0; now < 4000; ++now) {
        for (client_id_t c = 0; c < 16; ++c) {
            if (r.net.client_can_accept(c) && pushed < 2000) {
                const std::uint64_t id = pushed++;
                // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
                r.net.client_push(c, req(id, c, now + 100'000, id * 64));
            }
        }
        r.sim.step();
    }
    r.run_until_drained(200'000);
    EXPECT_EQ(r.completed.size(), pushed);
    EXPECT_EQ(r.net.in_flight(), 0u);
}

TEST(bluescale_ic, reset_restores_clean_state) {
    rig r(16);
    r.net.client_push(3, req(1, 3, 1000));
    r.sim.run(3);
    r.net.reset();
    r.mem.reset();
    EXPECT_EQ(r.net.in_flight(), 0u);
    r.net.client_push(9, req(2, 9, 100'000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 2u);
}

TEST(bluescale_ic, demux_response_network_routes_correctly) {
    bluescale_config cfg;
    cfg.responses = response_model::demux_network;
    rig r(64, cfg);
    for (client_id_t c = 0; c < 64; ++c) {
        r.net.client_push(c, req(5000 + c, c, 1'000'000, c * 4096));
    }
    r.run_until_drained(100'000);
    ASSERT_EQ(r.completed.size(), 64u);
    for (const auto& done : r.completed) {
        EXPECT_EQ(done.id, 5000u + done.client);
    }
}

TEST(bluescale_ic, ideal_and_demux_models_agree_at_low_rate) {
    auto run_model = [](response_model model) {
        bluescale_config cfg;
        cfg.responses = model;
        rig r(16, cfg);
        std::uint64_t pushed = 0;
        for (cycle_t now = 0; now < 4000; ++now) {
            const client_id_t c = static_cast<client_id_t>(now / 64 % 16);
            if (now % 64 == 0 && r.net.client_can_accept(c)) {
                const std::uint64_t id = pushed++;
                // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
                r.net.client_push(c, req(id, c, now + 100'000, id * 64));
            }
            r.sim.step();
        }
        r.run_until_drained();
        return r.completed.size();
    };
    // Sparse traffic: the demux network has no contention, so both
    // models deliver everything.
    EXPECT_EQ(run_model(response_model::ideal_latency),
              run_model(response_model::demux_network));
}

TEST(bluescale_ic, demux_network_serializes_response_bursts) {
    // All 16 clients' responses funnel through the root demux at one per
    // cycle: 16 simultaneous completions take >= 16 cycles to deliver.
    bluescale_config cfg;
    cfg.responses = response_model::demux_network;
    rig r(16, cfg);
    for (client_id_t c = 0; c < 16; ++c) {
        r.net.client_push(c, req(c, c, 1'000'000, c * 64));
    }
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 16u);
    cycle_t first = k_cycle_never, last = 0;
    for (const auto& done : r.completed) {
        first = std::min(first, done.complete_cycle);
        last = std::max(last, done.complete_cycle);
    }
    // The root demux forwards one response per cycle, so 16 deliveries
    // span at least 15 cycles no matter how the memory bunches them.
    EXPECT_GE(last - first, 15u);
}

TEST(bluescale_ic, forwards_counted_at_root) {
    rig r(16);
    for (client_id_t c = 0; c < 16; ++c) {
        r.net.client_push(c, req(c, c, 100'000, c * 64));
    }
    r.run_until_drained();
    EXPECT_EQ(r.net.forwarded_to_memory(), 16u);
    EXPECT_EQ(r.net.se_at(0, 0).forwarded(), 16u);
}

} // namespace
} // namespace bluescale::core
