#include <gtest/gtest.h>

#include "core/counters.hpp"

namespace bluescale::core {
namespace {

TEST(countdown_counter, program_then_reload) {
    countdown_counter c;
    c.program(5);
    EXPECT_EQ(c.value(), 0u); // reload required
    c.reload();
    EXPECT_EQ(c.value(), 5u);
}

TEST(countdown_counter, decrements_to_zero_and_saturates) {
    countdown_counter c;
    c.program(2);
    c.reload();
    c.decrement();
    EXPECT_EQ(c.value(), 1u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    c.decrement(); // saturating, not wrapping
    EXPECT_EQ(c.value(), 0u);
}

TEST(countdown_counter, reprogram_takes_effect_at_reload) {
    countdown_counter c;
    c.program(3);
    c.reload();
    c.program(7); // current value untouched
    EXPECT_EQ(c.value(), 3u);
    c.reload();
    EXPECT_EQ(c.value(), 7u);
}

TEST(server_task, unconfigured_is_disabled) {
    server_task s;
    EXPECT_FALSE(s.enabled());
    EXPECT_FALSE(s.tick_unit());
    EXPECT_FALSE(s.has_budget());
}

TEST(server_task, configure_loads_both_counters) {
    server_task s;
    s.configure(10, 3);
    EXPECT_TRUE(s.enabled());
    EXPECT_EQ(s.period(), 10u);
    EXPECT_EQ(s.budget(), 3u);
    EXPECT_EQ(s.budget_left(), 3u);
    EXPECT_TRUE(s.has_budget());
}

TEST(server_task, zero_budget_port_is_disabled) {
    server_task s;
    s.configure(10, 0);
    EXPECT_FALSE(s.enabled());
    EXPECT_FALSE(s.has_budget());
}

TEST(server_task, period_boundary_replenishes_budget) {
    server_task s;
    s.configure(4, 2);
    s.consume();
    s.consume();
    EXPECT_FALSE(s.has_budget());
    // Three ticks: no reload yet.
    EXPECT_FALSE(s.tick_unit());
    EXPECT_FALSE(s.tick_unit());
    EXPECT_FALSE(s.tick_unit());
    EXPECT_FALSE(s.has_budget());
    // Fourth tick wraps the period.
    EXPECT_TRUE(s.tick_unit());
    EXPECT_TRUE(s.has_budget());
    EXPECT_EQ(s.budget_left(), 2u);
}

TEST(server_task, deadline_counts_down_within_period) {
    server_task s;
    s.configure(5, 1);
    EXPECT_EQ(s.units_to_deadline(), 5u);
    s.tick_unit();
    EXPECT_EQ(s.units_to_deadline(), 4u);
    s.tick_unit();
    s.tick_unit();
    s.tick_unit();
    EXPECT_EQ(s.units_to_deadline(), 1u);
    s.tick_unit(); // boundary
    EXPECT_EQ(s.units_to_deadline(), 5u);
}

TEST(server_task, long_run_supply_equals_bandwidth) {
    // Over k periods, a backlogged server consuming greedily forwards
    // exactly k * Theta transactions.
    server_task s;
    s.configure(7, 3);
    std::uint64_t consumed = 0;
    for (int unit = 0; unit < 7 * 100; ++unit) {
        if (s.has_budget()) {
            s.consume();
            ++consumed;
        }
        s.tick_unit();
    }
    EXPECT_EQ(consumed, 300u);
}

TEST(server_task, unused_budget_does_not_carry_over) {
    server_task s;
    s.configure(4, 3);
    // Consume nothing in the first period.
    for (int i = 0; i < 4; ++i) s.tick_unit();
    EXPECT_EQ(s.budget_left(), 3u); // reloaded to Theta, not 6
}

} // namespace
} // namespace bluescale::core
