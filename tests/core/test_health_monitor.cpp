// Health monitor hysteresis: an element degrades when its per-window
// stall ratio crosses the enter threshold, stays degraded through
// marginal windows (above exit, below enter), and recovers only after
// the configured run of consecutive healthy windows.
#include <gtest/gtest.h>

#include "core/bluescale_ic.hpp"
#include "core/health_monitor.hpp"
#include "mem/memory_controller.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace bluescale::core {
namespace {

health_config tight_config() {
    health_config cfg;
    cfg.check_period = 100;
    cfg.stall_enter = 0.5;
    cfg.stall_exit = 0.05;
    cfg.recovery_windows = 3;
    return cfg;
}

struct rig {
    explicit rig(std::vector<sim::fault_event> events,
                 health_config cfg = tight_config())
        : fabric(16), monitor(fabric, cfg) {
        fabric.attach_memory(mem);
        fabric.set_response_handler([](mem_request&&) {});
        // Stall schedule applied directly to one leaf SE; no traffic is
        // needed (stall cycles accrue whether or not work is buffered).
        fabric.se_at(1, 0).set_stall_faults(
            sim::fault_window(std::move(events)));
        sim.add(fabric);
        sim.add(mem);
        sim.add(monitor); // after the fabric, as in harness::testbench
    }
    bluescale_ic fabric;
    memory_controller mem;
    health_monitor monitor;
    simulator sim;
};

TEST(health_monitor, degrades_past_enter_threshold) {
    // 60 stalled cycles in the first 100-cycle window: ratio 0.6 >= 0.5.
    rig r({{sim::fault_kind::se_stall, 0, 0, 60}});
    r.sim.run(101);
    EXPECT_TRUE(r.fabric.se_at(1, 0).degraded());
    EXPECT_EQ(r.monitor.degrade_events(), 1u);
    EXPECT_EQ(r.monitor.recovery_events(), 0u);
    // The untouched elements stay healthy.
    EXPECT_FALSE(r.fabric.se_at(0, 0).degraded());
    EXPECT_FALSE(r.fabric.se_at(1, 1).degraded());
}

TEST(health_monitor, ratio_below_enter_never_degrades) {
    // 10 stalls per window: above exit (0.05) but below enter (0.5) --
    // a healthy element must NOT flap into degraded mode (hysteresis).
    rig r({{sim::fault_kind::se_stall, 0, 0, 10},
           {sim::fault_kind::se_stall, 0, 100, 10},
           {sim::fault_kind::se_stall, 0, 200, 10}});
    r.sim.run(400);
    EXPECT_FALSE(r.fabric.se_at(1, 0).degraded());
    EXPECT_EQ(r.monitor.degrade_events(), 0u);
}

TEST(health_monitor, marginal_windows_hold_degraded_mode) {
    // Degrade in window 1, then keep each following window marginal
    // (ratio 0.1: above exit, below enter): no recovery, no re-degrade.
    rig r({{sim::fault_kind::se_stall, 0, 0, 60},
           {sim::fault_kind::se_stall, 0, 150, 10},
           {sim::fault_kind::se_stall, 0, 250, 10},
           {sim::fault_kind::se_stall, 0, 350, 10},
           {sim::fault_kind::se_stall, 0, 450, 10}});
    r.sim.run(501);
    EXPECT_TRUE(r.fabric.se_at(1, 0).degraded());
    EXPECT_EQ(r.monitor.degrade_events(), 1u);
    EXPECT_EQ(r.monitor.recovery_events(), 0u);
}

TEST(health_monitor, recovers_after_consecutive_healthy_windows) {
    // Stall burst in window 1 only; quiet afterwards. Recovery needs 3
    // consecutive healthy windows: checks at 200, 300, 400 fail to
    // recover (1, 2 windows), the check at 400 completes the run of 3.
    rig r({{sim::fault_kind::se_stall, 0, 0, 60}});
    r.sim.run(301); // checks at 100 (degrade), 200, 300
    EXPECT_TRUE(r.fabric.se_at(1, 0).degraded());
    r.sim.run(200); // check at 400: third healthy window -> recover
    EXPECT_FALSE(r.fabric.se_at(1, 0).degraded());
    EXPECT_EQ(r.monitor.degrade_events(), 1u);
    EXPECT_EQ(r.monitor.recovery_events(), 1u);

    const auto report = r.monitor.report();
    EXPECT_EQ(report.time_to_recover.count(), 1u);
    EXPECT_DOUBLE_EQ(report.time_to_recover.mean(), 300.0);
    // Degraded from the check at 100 to the check at 400.
    EXPECT_EQ(report.degraded_se_cycles,
              r.fabric.se_at(1, 0).degraded_cycles());
    EXPECT_EQ(report.degraded_se_cycles, 300u);
}

TEST(health_monitor, interrupted_healthy_run_restarts_recovery_count) {
    // Quiet, quiet, marginal, then quiet x3: the marginal window at
    // [300, 400) resets the consecutive-healthy counter, postponing
    // recovery from the check at 400 to the check at 700.
    rig r({{sim::fault_kind::se_stall, 0, 0, 60},
           {sim::fault_kind::se_stall, 0, 310, 10}});
    r.sim.run(601);
    EXPECT_TRUE(r.fabric.se_at(1, 0).degraded());
    r.sim.run(100);
    EXPECT_FALSE(r.fabric.se_at(1, 0).degraded());
    EXPECT_EQ(r.monitor.recovery_events(), 1u);
}

TEST(health_monitor, reset_clears_state_and_report) {
    rig r({{sim::fault_kind::se_stall, 0, 0, 60}});
    r.sim.run(101);
    ASSERT_EQ(r.monitor.degrade_events(), 1u);
    r.fabric.se_at(1, 0).set_degraded(false);
    r.monitor.reset();
    EXPECT_EQ(r.monitor.degrade_events(), 0u);
    EXPECT_EQ(r.monitor.report().recovery_events, 0u);
}

} // namespace
} // namespace bluescale::core
