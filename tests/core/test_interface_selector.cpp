#include <gtest/gtest.h>

#include "core/interface_selector.hpp"

namespace bluescale::core {
namespace {

TEST(interface_selector, table_depth_enforced) {
    interface_selector sel(2);
    EXPECT_TRUE(sel.load_task(0, 1, 100, 5));
    EXPECT_TRUE(sel.load_task(1, 1, 100, 5));
    EXPECT_FALSE(sel.load_task(2, 1, 100, 5)) << "table is full";
    EXPECT_EQ(sel.table_size(), 2u);
}

TEST(interface_selector, clear_table) {
    interface_selector sel(4);
    sel.load_task(0, 1, 100, 5);
    sel.clear_table();
    EXPECT_EQ(sel.table_size(), 0u);
    EXPECT_TRUE(sel.load_task(0, 1, 100, 5));
}

TEST(interface_selector, client_field_masked_to_two_bits) {
    interface_selector sel(4);
    sel.load_task(5, 1, 100, 5); // 5 & 0x3 == 1
    EXPECT_EQ(sel.table().front().client, 1);
}

TEST(interface_selector, selects_per_port_interfaces) {
    interface_selector sel(16);
    sel.load_task(0, 1, 100, 10);
    sel.load_task(1, 1, 200, 10);
    // Ports 2 and 3 empty.
    const auto result = sel.select(0.15);
    ASSERT_TRUE(result.interfaces[0].has_value());
    ASSERT_TRUE(result.interfaces[1].has_value());
    EXPECT_GT(result.interfaces[0]->bandwidth(), 0.1);
    EXPECT_GT(result.interfaces[1]->bandwidth(), 0.05);
    // Empty ports get the null interface.
    ASSERT_TRUE(result.interfaces[2].has_value());
    EXPECT_EQ(result.interfaces[2]->budget, 0u);
    EXPECT_TRUE(result.feasible());
}

TEST(interface_selector, reports_infeasible_port) {
    interface_selector sel(16);
    sel.load_task(0, 1, 10, 11); // U > 1
    const auto result = sel.select(1.1);
    EXPECT_FALSE(result.interfaces[0].has_value());
    EXPECT_FALSE(result.feasible());
}

TEST(interface_selector, estimates_fsm_cycles_from_work) {
    interface_selector sel(16);
    sel.load_task(0, 1, 100, 10);
    const auto result = sel.select(0.2);
    EXPECT_GT(result.work.tests_run, 0u);
    EXPECT_EQ(result.estimated_cycles,
              result.work.tests_run * interface_selector::k_cycles_per_test +
                  result.work.points_checked *
                      interface_selector::k_cycles_per_point);
}

TEST(interface_selector, more_ports_cost_more_cycles) {
    // Identical task on one port vs all four ports: the four-port table
    // does exactly four times the selection work.
    interface_selector small(16), large(16);
    small.load_task(0, 1, 64, 4);
    for (std::uint8_t p = 0; p < 4; ++p) {
        large.load_task(p, 1, 64, 4);
    }
    const auto a = small.select(0.0625);
    const auto b = large.select(0.25);
    EXPECT_GT(b.work.tests_run, a.work.tests_run);
    EXPECT_GT(b.estimated_cycles, a.estimated_cycles);
}

TEST(interface_selector, matches_direct_analysis_call) {
    interface_selector sel(16);
    sel.load_task(2, 1, 150, 6);
    sel.load_task(2, 2, 300, 6);
    const auto result = sel.select(0.3);
    const auto direct = analysis::select_interface(
        {{150, 6}, {300, 6}}, 0.3);
    ASSERT_TRUE(result.interfaces[2].has_value());
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(*result.interfaces[2], *direct);
}

} // namespace
} // namespace bluescale::core
