#include <gtest/gtest.h>

#include "core/local_scheduler.hpp"

namespace bluescale::core {
namespace {

mem_request req(cycle_t deadline) {
    mem_request r;
    r.level_deadline = deadline;
    return r;
}

struct bufs4 {
    bufs4()
        : arr{random_access_buffer(4), random_access_buffer(4),
              random_access_buffer(4), random_access_buffer(4)} {}
    void fill(std::uint32_t port, cycle_t deadline) {
        arr[port].load(req(deadline));
        arr[port].commit();
    }
    std::array<random_access_buffer, k_se_ports> arr;
};

TEST(local_scheduler, unconfigured_picks_nothing) {
    local_scheduler sched;
    bufs4 b;
    b.fill(0, 10);
    EXPECT_FALSE(sched.configured());
    EXPECT_FALSE(sched.pick_budgeted(b.arr).has_value());
}

TEST(local_scheduler, configured_flag_set) {
    local_scheduler sched;
    sched.configure_port(0, 4, 1);
    EXPECT_TRUE(sched.configured());
}

TEST(local_scheduler, ready_requires_budget_and_pending_request) {
    local_scheduler sched;
    sched.configure_port(0, 4, 1);
    bufs4 b;
    // Budget but empty buffer: not ready.
    EXPECT_FALSE(sched.pick_budgeted(b.arr).has_value());
    // Request appears: ready.
    b.fill(0, 10);
    ASSERT_TRUE(sched.pick_budgeted(b.arr).has_value());
    EXPECT_EQ(*sched.pick_budgeted(b.arr), 0u);
    // Budget exhausted: not ready again.
    sched.server(0).consume();
    EXPECT_FALSE(sched.pick_budgeted(b.arr).has_value());
}

TEST(local_scheduler, gedf_picks_earliest_server_deadline) {
    local_scheduler sched(server_policy::gedf);
    sched.configure_port(0, 10, 2);
    sched.configure_port(1, 4, 1);
    sched.configure_port(2, 7, 1);
    bufs4 b;
    b.fill(0, 100);
    b.fill(1, 100);
    b.fill(2, 100);
    // Server deadlines: 10, 4, 7 -> port 1 wins (Algorithm 1).
    ASSERT_TRUE(sched.pick_budgeted(b.arr).has_value());
    EXPECT_EQ(*sched.pick_budgeted(b.arr), 1u);
}

TEST(local_scheduler, gedf_tracks_advancing_periods) {
    local_scheduler sched(server_policy::gedf);
    sched.configure_port(0, 10, 5);
    sched.configure_port(1, 8, 5);
    bufs4 b;
    b.fill(0, 100);
    b.fill(1, 100);
    // Initially deadlines 10 vs 8 -> port 1.
    EXPECT_EQ(*sched.pick_budgeted(b.arr), 1u);
    // After 7 ticks port 1 wraps sooner; tick both 7 units:
    for (int i = 0; i < 7; ++i) sched.tick_unit();
    // deadlines now: port0 = 3, port1 = 1 -> port 1 still earlier.
    EXPECT_EQ(*sched.pick_budgeted(b.arr), 1u);
    sched.tick_unit(); // port1 reloads to 8, port0 at 2
    EXPECT_EQ(*sched.pick_budgeted(b.arr), 0u);
}

TEST(local_scheduler, fixed_priority_picks_lowest_ready_port) {
    local_scheduler sched(server_policy::fixed_priority);
    sched.configure_port(0, 10, 1);
    sched.configure_port(1, 2, 1); // would win under GEDF
    bufs4 b;
    b.fill(0, 100);
    b.fill(1, 100);
    EXPECT_EQ(*sched.pick_budgeted(b.arr), 0u);
}

TEST(local_scheduler, disabled_ports_skipped) {
    local_scheduler sched;
    sched.configure_port(0, 0, 0); // disabled
    sched.configure_port(1, 6, 1);
    bufs4 b;
    b.fill(0, 1);
    b.fill(1, 100);
    EXPECT_EQ(*sched.pick_budgeted(b.arr), 1u);
}

TEST(local_scheduler, reset_counters_restores_budgets) {
    local_scheduler sched;
    sched.configure_port(0, 4, 2);
    sched.server(0).consume();
    sched.server(0).consume();
    sched.tick_unit();
    sched.reset_counters();
    EXPECT_EQ(sched.server(0).budget_left(), 2u);
    EXPECT_EQ(sched.server(0).units_to_deadline(), 4u);
}

} // namespace
} // namespace bluescale::core
