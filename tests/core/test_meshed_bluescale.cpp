#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/meshed_bluescale.hpp"
#include "sim/simulator.hpp"

namespace bluescale::core {
namespace {

mem_request req(request_id_t id, client_id_t client, std::uint64_t addr,
                cycle_t deadline = 1'000'000) {
    mem_request r;
    r.id = id;
    r.client = client;
    r.addr = addr;
    r.abs_deadline = deadline;
    r.level_deadline = deadline;
    return r;
}

struct rig {
    explicit rig(std::uint32_t n, meshed_config cfg = {}) : net(n, cfg) {
        net.set_response_handler(
            [this](mem_request&& r) { completed.push_back(std::move(r)); });
        sim.add(net);
    }
    void run_until_drained(cycle_t max = 50'000) {
        sim.run_until([this] { return net.in_flight() == 0; }, max);
    }
    meshed_bluescale_ic net;
    std::vector<mem_request> completed;
    simulator sim;
};

TEST(meshed_bluescale, address_steering_interleaves_channels) {
    meshed_config cfg;
    cfg.channels = 4;
    cfg.interleave_bytes = 4096;
    meshed_bluescale_ic net(16, cfg);
    for (std::uint64_t chunk = 0; chunk < 16; ++chunk) {
        EXPECT_EQ(net.channel_of(chunk * 4096), chunk % 4);
        EXPECT_EQ(net.channel_of(chunk * 4096 + 64), chunk % 4);
    }
}

TEST(meshed_bluescale, round_trip_through_each_channel) {
    meshed_config cfg;
    cfg.channels = 2;
    rig r(16, cfg);
    r.net.client_push(0, req(1, 0, 0));          // channel 0
    r.net.client_push(0, req(2, 0, 4096));       // channel 1
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 2u);
    EXPECT_EQ(r.net.controller(0).serviced(), 1u);
    EXPECT_EQ(r.net.controller(1).serviced(), 1u);
}

TEST(meshed_bluescale, responses_return_to_issuing_client) {
    meshed_config cfg;
    cfg.channels = 2;
    rig r(16, cfg);
    for (client_id_t c = 0; c < 16; ++c) {
        r.net.client_push(c, req(100 + c, c, c * 4096));
    }
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 16u);
    for (const auto& done : r.completed) {
        EXPECT_EQ(done.id, 100u + done.client);
    }
}

TEST(meshed_bluescale, aggregate_bandwidth_scales_with_channels) {
    // Saturating sequential traffic: K channels service ~K times the
    // transactions of one channel in the same window.
    auto run_saturated = [](std::uint32_t channels) {
        meshed_config cfg;
        cfg.channels = channels;
        cfg.interleave_bytes = 64; // line-interleave across channels
        meshed_bluescale_ic net(16, cfg);
        net.set_response_handler([](mem_request&&) {});
        simulator sim;
        sim.add(net);
        std::uint64_t addr = 0;
        for (cycle_t now = 0; now < 20'000; ++now) {
            for (client_id_t c = 0; c < 16; ++c) {
                if (net.client_can_accept(c)) {
                    net.client_push(c, req(addr, c, addr * 64));
                    ++addr;
                }
            }
            sim.step();
        }
        return net.total_serviced();
    };
    const auto one = run_saturated(1);
    const auto four = run_saturated(4);
    EXPECT_GT(four, 3 * one);
}

TEST(meshed_bluescale, configure_programs_all_channels) {
    std::vector<analysis::task_set> clients(16, analysis::task_set{{200, 4}});
    const auto sel = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);
    meshed_config cfg;
    cfg.channels = 2;
    meshed_bluescale_ic net(16, cfg);
    net.configure(sel);
    for (std::uint32_t k = 0; k < 2; ++k) {
        EXPECT_TRUE(net.tree(k).se_at(0, 0).scheduler().configured());
    }
}

TEST(meshed_bluescale, reset_clears_all_channels) {
    meshed_config cfg;
    cfg.channels = 2;
    rig r(16, cfg);
    r.net.client_push(0, req(1, 0, 0));
    r.sim.run(2);
    r.net.reset();
    EXPECT_EQ(r.net.in_flight(), 0u);
    r.net.client_push(1, req(2, 1, 4096));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 2u);
}

TEST(meshed_bluescale, single_channel_degenerates_to_plain_bluescale) {
    meshed_config cfg;
    cfg.channels = 1;
    rig r(16, cfg);
    for (client_id_t c = 0; c < 16; ++c) {
        r.net.client_push(c, req(c, c, c * 4096));
    }
    r.run_until_drained();
    EXPECT_EQ(r.completed.size(), 16u);
    EXPECT_EQ(r.net.total_serviced(), 16u);
}

} // namespace
} // namespace bluescale::core
