#include <gtest/gtest.h>

#include "core/parameter_path.hpp"

namespace bluescale::core {
namespace {

std::vector<analysis::task_set> uniform_clients(std::uint32_t n,
                                                analysis::rt_task task) {
    return std::vector<analysis::task_set>(n, analysis::task_set{task});
}

TEST(parameter_path, full_reconfiguration_involves_every_se) {
    const auto report =
        model_full_reconfiguration(uniform_clients(16, {200, 4}));
    EXPECT_TRUE(report.feasible);
    EXPECT_EQ(report.ses_involved, 5u);
    EXPECT_GT(report.total_cycles, 0u);
    ASSERT_EQ(report.level_finish_cycles.size(), 2u);
    // The root cannot finish before the leaves.
    EXPECT_GE(report.level_finish_cycles[0],
              report.level_finish_cycles[1]);
}

TEST(parameter_path, selection_matches_direct_analysis) {
    const auto clients = uniform_clients(16, {200, 4});
    const auto report = model_full_reconfiguration(clients);
    const auto direct = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(direct.feasible);
    for (std::uint32_t l = 0; l < direct.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < direct.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < 4; ++p) {
                EXPECT_EQ(report.selection.levels[l][y].ports[p],
                          direct.levels[l][y].ports[p]);
            }
        }
    }
}

TEST(parameter_path, levels_run_in_parallel) {
    // 64 clients: 21 SEs. The critical path is 3 selector stages, not 21:
    // the total must be far below the sum of all per-SE work.
    const auto report =
        model_full_reconfiguration(uniform_clients(64, {800, 4}));
    EXPECT_TRUE(report.feasible);
    EXPECT_EQ(report.ses_involved, 21u);
    ASSERT_EQ(report.level_finish_cycles.size(), 3u);
    // Leaf SEs all finish at the same cycle (identical work, parallel).
    const auto leaf_finish = report.level_finish_cycles[2];
    EXPECT_LT(leaf_finish, report.total_cycles);
    // Rough parallelism check: total < 21/3 x the leaf stage.
    EXPECT_LT(report.total_cycles, 7 * leaf_finish);
}

TEST(parameter_path, client_update_touches_only_the_path) {
    const auto clients = uniform_clients(64, {800, 4});
    auto base = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(base.feasible);
    const auto report = model_client_update(
        base, clients, 17, analysis::task_set{{400, 8}});
    EXPECT_TRUE(report.feasible);
    EXPECT_EQ(report.ses_involved, 3u); // leaf, mid, root
    EXPECT_GT(report.total_cycles, 0u);
}

TEST(parameter_path, client_update_cheaper_than_full) {
    const auto clients = uniform_clients(64, {800, 4});
    const auto full = model_full_reconfiguration(clients);
    auto base = analysis::select_tree_interfaces(clients);
    const auto update = model_client_update(
        base, clients, 5, analysis::task_set{{400, 8}});
    EXPECT_LT(update.ses_involved, full.ses_involved);
}

TEST(parameter_path, infeasible_overload_reported) {
    const auto report =
        model_full_reconfiguration(uniform_clients(16, {40, 5}));
    EXPECT_FALSE(report.feasible);
}

TEST(parameter_path, update_selection_matches_incremental_analysis) {
    auto clients = uniform_clients(16, {200, 4});
    auto base = analysis::select_tree_interfaces(clients);
    const auto report = model_client_update(
        base, clients, 6, analysis::task_set{{100, 8}});

    auto clients2 = uniform_clients(16, {200, 4});
    auto expected = analysis::select_tree_interfaces(clients2);
    analysis::update_client_tasks(expected, clients2, 6,
                                  analysis::task_set{{100, 8}});
    for (std::uint32_t l = 0; l < expected.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < expected.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < 4; ++p) {
                EXPECT_EQ(report.selection.levels[l][y].ports[p],
                          expected.levels[l][y].ports[p]);
            }
        }
    }
}

} // namespace
} // namespace bluescale::core
