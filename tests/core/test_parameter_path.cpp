#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/parameter_path.hpp"

namespace bluescale::core {
namespace {

std::vector<analysis::task_set> uniform_clients(std::uint32_t n,
                                                analysis::rt_task task) {
    return std::vector<analysis::task_set>(n, analysis::task_set{task});
}

void apply_update(analysis::tree_selection& sel,
                  std::vector<analysis::task_set>& clients,
                  std::uint32_t client, analysis::task_set new_tasks) {
    auto update = analysis::evaluate_client_update(sel, clients, client,
                                                   std::move(new_tasks));
    analysis::apply_client_update(std::move(update), sel, clients);
}

TEST(parameter_path, full_reconfiguration_involves_every_se) {
    const auto report =
        model_full_reconfiguration(uniform_clients(16, {200, 4}));
    EXPECT_TRUE(report.feasible);
    EXPECT_EQ(report.ses_involved, 5u);
    EXPECT_GT(report.total_cycles, 0u);
    ASSERT_EQ(report.level_finish_cycles.size(), 2u);
    // The root cannot finish before the leaves.
    EXPECT_GE(report.level_finish_cycles[0],
              report.level_finish_cycles[1]);
}

TEST(parameter_path, selection_matches_direct_analysis) {
    const auto clients = uniform_clients(16, {200, 4});
    const auto report = model_full_reconfiguration(clients);
    const auto direct = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(direct.feasible);
    for (std::uint32_t l = 0; l < direct.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < direct.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < 4; ++p) {
                EXPECT_EQ(report.selection.levels[l][y].ports[p],
                          direct.levels[l][y].ports[p]);
            }
        }
    }
}

TEST(parameter_path, levels_run_in_parallel) {
    // 64 clients: 21 SEs. The critical path is 3 selector stages, not 21:
    // the total must be far below the sum of all per-SE work.
    const auto report =
        model_full_reconfiguration(uniform_clients(64, {800, 4}));
    EXPECT_TRUE(report.feasible);
    EXPECT_EQ(report.ses_involved, 21u);
    ASSERT_EQ(report.level_finish_cycles.size(), 3u);
    // Leaf SEs all finish at the same cycle (identical work, parallel).
    const auto leaf_finish = report.level_finish_cycles[2];
    EXPECT_LT(leaf_finish, report.total_cycles);
    // Rough parallelism check: total < 21/3 x the leaf stage.
    EXPECT_LT(report.total_cycles, 7 * leaf_finish);
}

TEST(parameter_path, client_update_touches_only_the_path) {
    const auto clients = uniform_clients(64, {800, 4});
    auto base = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(base.feasible);
    const auto report = model_client_update(
        base, clients, 17, analysis::task_set{{400, 8}});
    EXPECT_TRUE(report.feasible);
    EXPECT_EQ(report.ses_involved, 3u); // leaf, mid, root
    EXPECT_GT(report.total_cycles, 0u);
}

TEST(parameter_path, client_update_cheaper_than_full) {
    const auto clients = uniform_clients(64, {800, 4});
    const auto full = model_full_reconfiguration(clients);
    auto base = analysis::select_tree_interfaces(clients);
    const auto update = model_client_update(
        base, clients, 5, analysis::task_set{{400, 8}});
    EXPECT_LT(update.ses_involved, full.ses_involved);
}

TEST(parameter_path, infeasible_overload_reported) {
    const auto report =
        model_full_reconfiguration(uniform_clients(16, {40, 5}));
    EXPECT_FALSE(report.feasible);
}

TEST(parameter_path, infeasible_update_leaves_committed_selection_intact) {
    const auto clients = uniform_clients(16, {200, 4});
    const auto base = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(base.feasible);
    const auto snapshot = base;

    // A demand no interface can serve: the update must fail...
    const auto report = model_client_update(
        base, clients, 3, analysis::task_set{{40, 39}});
    EXPECT_FALSE(report.feasible);

    // ...and the caller's committed selection is byte-identical (the
    // model works on copies; this is what makes reconfig_manager's
    // reject-with-zero-perturbation guarantee possible).
    for (std::uint32_t l = 0; l < snapshot.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < snapshot.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < 4; ++p) {
                EXPECT_EQ(base.levels[l][y].ports[p],
                          snapshot.levels[l][y].ports[p]);
            }
        }
    }
}

TEST(parameter_path, update_recomputes_exactly_the_leaf_to_root_path) {
    // 64 clients, 3 levels: the path is leaf + mid + root = leaf_level+1
    // SEs, and every off-path SE keeps its previous interfaces.
    const auto clients = uniform_clients(64, {800, 4});
    const auto base = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(base.feasible);
    const std::uint32_t client = 17;
    const auto report = model_client_update(
        base, clients, client, analysis::task_set{{400, 8}});
    ASSERT_TRUE(report.feasible);
    EXPECT_EQ(report.ses_involved, base.shape.leaf_level + 1);

    // Walk the path: (level, order) pairs from the changed client's leaf
    // up to the root.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> path;
    std::uint32_t order = base.shape.leaf_se_of_client(client);
    for (std::uint32_t l = base.shape.leaf_level;; --l) {
        path.emplace_back(l, order);
        if (l == 0) break;
        order = analysis::quadtree_shape::parent_order(order);
    }
    for (std::uint32_t l = 0; l < base.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < base.levels[l].size(); ++y) {
            const bool on_path =
                std::find(path.begin(), path.end(),
                          std::make_pair(l, y)) != path.end();
            if (on_path) continue;
            for (std::uint32_t p = 0; p < 4; ++p) {
                EXPECT_EQ(report.selection.levels[l][y].ports[p],
                          base.levels[l][y].ports[p])
                    << "off-path SE(" << l << "," << y << ") port " << p;
            }
        }
    }
}

TEST(parameter_path, zero_task_update_removes_the_client) {
    const auto clients = uniform_clients(16, {100, 4});
    const auto base = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(base.feasible);

    // Client 9 leaves: the update stays feasible, frees its leaf port and
    // lowers the root bandwidth.
    const auto report =
        model_client_update(base, clients, 9, analysis::task_set{});
    ASSERT_TRUE(report.feasible);
    const auto& shape = base.shape;
    const auto& leaf_port =
        report.selection.levels[shape.leaf_level]
            [shape.leaf_se_of_client(9)]
                .ports[shape.leaf_port_of_client(9)];
    EXPECT_TRUE(!leaf_port || leaf_port->budget == 0);
    EXPECT_LT(report.selection.root_bandwidth, base.root_bandwidth);
}

TEST(parameter_path, update_selection_matches_incremental_analysis) {
    auto clients = uniform_clients(16, {200, 4});
    auto base = analysis::select_tree_interfaces(clients);
    const auto report = model_client_update(
        base, clients, 6, analysis::task_set{{100, 8}});

    auto clients2 = uniform_clients(16, {200, 4});
    auto expected = analysis::select_tree_interfaces(clients2);
    apply_update(expected, clients2, 6, analysis::task_set{{100, 8}});
    for (std::uint32_t l = 0; l < expected.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < expected.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < 4; ++p) {
                EXPECT_EQ(report.selection.levels[l][y].ports[p],
                          expected.levels[l][y].ports[p]);
            }
        }
    }
}

} // namespace
} // namespace bluescale::core
