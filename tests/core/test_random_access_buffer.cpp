#include <gtest/gtest.h>

#include "core/random_access_buffer.hpp"

namespace bluescale::core {
namespace {

mem_request req(request_id_t id, cycle_t deadline) {
    mem_request r;
    r.id = id;
    r.level_deadline = deadline;
    return r;
}

TEST(random_access_buffer, load_visible_after_commit) {
    random_access_buffer buf(4);
    buf.load(req(1, 100));
    EXPECT_TRUE(buf.empty());
    buf.commit();
    EXPECT_EQ(buf.size(), 1u);
}

TEST(random_access_buffer, min_deadline_scans_all_entries) {
    random_access_buffer buf(4);
    buf.load(req(1, 300));
    buf.load(req(2, 100));
    buf.load(req(3, 200));
    buf.commit();
    ASSERT_TRUE(buf.min_deadline().has_value());
    EXPECT_EQ(*buf.min_deadline(), 100u);
}

TEST(random_access_buffer, min_deadline_empty_is_nullopt) {
    random_access_buffer buf(4);
    EXPECT_FALSE(buf.min_deadline().has_value());
}

TEST(random_access_buffer, fetch_earliest_extracts_by_deadline) {
    random_access_buffer buf(4);
    buf.load(req(1, 300));
    buf.load(req(2, 100));
    buf.load(req(3, 200));
    buf.commit();
    EXPECT_EQ(buf.fetch_earliest().id, 2u);
    EXPECT_EQ(buf.fetch_earliest().id, 3u);
    EXPECT_EQ(buf.fetch_earliest().id, 1u);
    EXPECT_TRUE(buf.empty());
}

TEST(random_access_buffer, ties_broken_by_load_order) {
    random_access_buffer buf(4);
    buf.load(req(1, 100));
    buf.load(req(2, 100));
    buf.commit();
    EXPECT_EQ(buf.fetch_earliest().id, 1u);
}

TEST(random_access_buffer, capacity_respected) {
    random_access_buffer buf(2);
    buf.load(req(1, 1));
    buf.load(req(2, 2));
    EXPECT_FALSE(buf.can_load());
    buf.commit();
    EXPECT_FALSE(buf.can_load());
    buf.fetch_earliest();
    EXPECT_TRUE(buf.can_load());
}

TEST(random_access_buffer, charge_blocked_only_earlier_deadlines) {
    random_access_buffer buf(4);
    buf.load(req(1, 100));
    buf.load(req(2, 300));
    buf.commit();
    buf.charge_blocked(/*granted_deadline=*/200);
    // Only id 1 (deadline 100 < 200) is blocked by the grant.
    const auto a = buf.fetch_earliest();
    const auto b = buf.fetch_earliest();
    EXPECT_EQ(a.id, 1u);
    EXPECT_EQ(a.blocked_cycles, 1u);
    EXPECT_EQ(b.blocked_cycles, 0u);
}

TEST(random_access_buffer, clear_drops_everything) {
    random_access_buffer buf(4);
    buf.load(req(1, 1));
    buf.commit();
    buf.load(req(2, 2)); // staged
    buf.clear();
    buf.commit();
    EXPECT_TRUE(buf.empty());
    EXPECT_TRUE(buf.can_load());
}

TEST(random_access_buffer, interleaved_load_fetch) {
    random_access_buffer buf(4);
    buf.load(req(1, 50));
    buf.commit();
    buf.load(req(2, 10)); // staged: not fetchable this cycle
    EXPECT_EQ(*buf.min_deadline(), 50u);
    EXPECT_EQ(buf.fetch_earliest().id, 1u);
    buf.commit();
    EXPECT_EQ(buf.fetch_earliest().id, 2u);
}

} // namespace
} // namespace bluescale::core
