// Transactional reconfiguration: feasible requests stage and commit
// after the modeled propagation latency; infeasible ones are rejected
// with a structured reason and zero perturbation of the running fabric;
// hazards during staging or at the commit instant roll the transaction
// back, restoring the prior (Pi, Theta) everywhere.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "analysis/selection_cache.hpp"
#include "core/bluescale_ic.hpp"
#include "core/reconfig_manager.hpp"
#include "mem/memory_controller.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace bluescale::core {
namespace {

/// (period, budget) of every server in the fabric, for before/after
/// perturbation checks.
std::vector<std::pair<std::uint32_t, std::uint32_t>>
server_snapshot(const bluescale_ic& fabric) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> snap;
    const auto& shape = fabric.shape();
    for (std::uint32_t l = 0; l <= shape.leaf_level; ++l) {
        for (std::uint32_t y = 0; y < shape.ses_at_level(l); ++y) {
            const auto& sched = fabric.se_at(l, y).scheduler();
            for (std::uint32_t p = 0; p < k_se_ports; ++p) {
                snap.emplace_back(sched.server(p).period(),
                                  sched.server(p).budget());
            }
        }
    }
    return snap;
}

void expect_selections_equal(const analysis::tree_selection& a,
                             const analysis::tree_selection& b) {
    ASSERT_EQ(a.levels.size(), b.levels.size());
    for (std::uint32_t l = 0; l < a.levels.size(); ++l) {
        for (std::uint32_t y = 0; y < a.levels[l].size(); ++y) {
            for (std::uint32_t p = 0; p < 4; ++p) {
                EXPECT_EQ(a.levels[l][y].ports[p], b.levels[l][y].ports[p])
                    << "SE(" << l << "," << y << ") port " << p;
            }
        }
    }
}

struct rig {
    explicit rig(reconfig_config cfg = {})
        : fabric(16),
          clients(16, analysis::task_set{{200, 4}}),
          selection(analysis::select_tree_interfaces(clients)) {
        EXPECT_TRUE(selection.feasible);
        fabric.attach_memory(mem);
        fabric.set_response_handler([](mem_request&&) {});
        fabric.configure(selection);
        mgr = std::make_unique<reconfig_manager>(fabric, selection, clients,
                                                 cfg);
        sim.add(fabric);
        sim.add(mem);
        sim.add(*mgr);
    }

    /// Runs until the request leaves the staging state (bounded).
    void run_until_resolved(std::uint64_t id, cycle_t max_cycles = 100'000) {
        sim.run_until(
            [&] {
                const auto o = mgr->record(id).outcome;
                return o != admission_outcome::pending &&
                       o != admission_outcome::staged;
            },
            max_cycles);
    }

    bluescale_ic fabric;
    memory_controller mem;
    std::vector<analysis::task_set> clients;
    analysis::tree_selection selection;
    std::unique_ptr<reconfig_manager> mgr;
    simulator sim;
};

TEST(reconfig_manager, feasible_request_commits_after_propagation_latency) {
    rig r;
    const auto id = r.mgr->submit(6, analysis::task_set{{100, 8}});
    r.sim.run(3); // admission runs at the manager's next tick
    ASSERT_TRUE(r.mgr->staging());
    EXPECT_EQ(r.mgr->record(id).outcome, admission_outcome::staged);
    EXPECT_GT(r.mgr->record(id).latency_cycles, 0u);

    r.run_until_resolved(id);
    const auto& rec = r.mgr->record(id);
    EXPECT_EQ(rec.outcome, admission_outcome::committed);
    // The commit lands exactly when the parameter path delivers.
    EXPECT_EQ(rec.resolved_at, rec.decided_at + rec.latency_cycles);
    EXPECT_EQ(r.mgr->stats().committed, 1u);
    EXPECT_EQ(r.mgr->stats().admitted, 1u);

    // The manager's committed state carries the new task set, and the
    // fabric's leaf server now runs the newly selected interface.
    ASSERT_EQ(r.mgr->client_tasks()[6].size(), 1u);
    EXPECT_EQ(r.mgr->client_tasks()[6][0].period, 100u);
    const auto& shape = r.selection.shape;
    const auto& iface =
        r.mgr->committed()
            .levels[shape.leaf_level][shape.leaf_se_of_client(6)]
            .ports[shape.leaf_port_of_client(6)];
    ASSERT_TRUE(iface.has_value());
    const auto& sched =
        r.fabric.se_at(shape.leaf_level, shape.leaf_se_of_client(6))
            .scheduler();
    EXPECT_EQ(sched.server(shape.leaf_port_of_client(6)).period(),
              iface->period);
    EXPECT_EQ(sched.server(shape.leaf_port_of_client(6)).budget(),
              iface->budget);
}

TEST(reconfig_manager, infeasible_request_rejected_without_perturbation) {
    rig r;
    const auto before = server_snapshot(r.fabric);

    // Near-unit utilization from one client: no selection can carry it.
    const auto id = r.mgr->submit(3, analysis::task_set{{40, 39}});
    r.run_until_resolved(id);

    const auto& rec = r.mgr->record(id);
    EXPECT_TRUE(rec.outcome == admission_outcome::rejected_overutilized ||
                rec.outcome == admission_outcome::rejected_infeasible)
        << admission_outcome_name(rec.outcome);
    EXPECT_FALSE(rec.detail.empty());
    EXPECT_EQ(r.mgr->stats().rejected, 1u);
    EXPECT_EQ(r.mgr->stats().admitted, 0u);

    // Zero perturbation: every fabric server and the committed selection
    // are byte-identical to the pre-request state.
    EXPECT_EQ(server_snapshot(r.fabric), before);
    expect_selections_equal(r.mgr->committed(), r.selection);
    ASSERT_EQ(r.mgr->client_tasks()[3].size(), 1u);
    EXPECT_EQ(r.mgr->client_tasks()[3][0].period, 200u);
}

TEST(reconfig_manager, admission_decisions_are_deterministic) {
    rig a;
    rig b;
    for (std::uint32_t c : {2u, 9u, 14u}) {
        a.mgr->submit(c, analysis::task_set{{100, 8}});
        b.mgr->submit(c, analysis::task_set{{100, 8}});
    }
    a.sim.run(60'000);
    b.sim.run(60'000);
    ASSERT_EQ(a.mgr->records().size(), b.mgr->records().size());
    for (std::size_t i = 0; i < a.mgr->records().size(); ++i) {
        const auto& ra = a.mgr->records()[i];
        const auto& rb = b.mgr->records()[i];
        EXPECT_EQ(ra.outcome, rb.outcome);
        EXPECT_EQ(ra.decided_at, rb.decided_at);
        EXPECT_EQ(ra.resolved_at, rb.resolved_at);
        EXPECT_EQ(ra.latency_cycles, rb.latency_cycles);
        EXPECT_EQ(ra.root_bandwidth, rb.root_bandwidth);
    }
}

TEST(reconfig_manager, degraded_path_rejected_at_admission) {
    rig r;
    // Client 6 sits behind leaf SE(1, 1): degrade it.
    r.fabric.se_at(1, 1).set_degraded(true);
    const auto id = r.mgr->submit(6, analysis::task_set{{100, 8}});
    r.run_until_resolved(id);
    const auto& rec = r.mgr->record(id);
    EXPECT_EQ(rec.outcome, admission_outcome::rejected_path_hazard);
    EXPECT_NE(rec.detail.find("degraded"), std::string::npos) << rec.detail;

    // An off-path client is unaffected by the degraded element's gate.
    const auto id2 = r.mgr->submit(0, analysis::task_set{{100, 8}});
    r.run_until_resolved(id2);
    EXPECT_EQ(r.mgr->record(id2).outcome, admission_outcome::committed);
}

TEST(reconfig_manager, mid_staging_hazard_rolls_back) {
    rig r;
    const auto before = server_snapshot(r.fabric);
    const auto id = r.mgr->submit(6, analysis::task_set{{100, 8}});
    r.sim.run(3);
    ASSERT_TRUE(r.mgr->staging());

    // The health monitor flips a request-path SE mid-flight.
    r.fabric.se_at(1, 1).set_degraded(true);
    r.sim.run(3);
    const auto& rec = r.mgr->record(id);
    EXPECT_EQ(rec.outcome, admission_outcome::rolled_back);
    EXPECT_NE(rec.detail.find("staging hazard"), std::string::npos)
        << rec.detail;
    EXPECT_EQ(r.mgr->stats().rolled_back, 1u);
    EXPECT_FALSE(r.mgr->staging());
    // The fabric was never reprogrammed; prior (Pi, Theta) hold.
    EXPECT_EQ(server_snapshot(r.fabric), before);
    expect_selections_equal(r.mgr->committed(), r.selection);
}

TEST(reconfig_manager, commit_instant_hazard_restores_prior_parameters) {
    rig r;
    const auto before = server_snapshot(r.fabric);
    const auto id = r.mgr->submit(6, analysis::task_set{{100, 8}});
    r.sim.run(3);
    ASSERT_TRUE(r.mgr->staging());

    // Schedule a stall window on the request path opening exactly at the
    // commit instant: the fabric IS reprogrammed with the staged
    // selection, the hazard check then fires, and the rollback must
    // reprogram the prior committed parameters everywhere.
    const auto& rec0 = r.mgr->record(id);
    const cycle_t commit_at = rec0.decided_at + rec0.latency_cycles;
    ASSERT_GT(commit_at, r.sim.now());
    r.fabric.se_at(1, 1).set_stall_faults(sim::fault_window(
        {{sim::fault_kind::se_stall, 0, commit_at, 16}}));

    r.run_until_resolved(id);
    const auto& rec = r.mgr->record(id);
    EXPECT_EQ(rec.outcome, admission_outcome::rolled_back);
    EXPECT_NE(rec.detail.find("commit hazard"), std::string::npos)
        << rec.detail;
    EXPECT_EQ(rec.resolved_at, commit_at);
    EXPECT_EQ(r.mgr->stats().rolled_back, 1u);
    EXPECT_EQ(r.mgr->stats().committed, 0u);
    // Restored: every server back to the prior committed (Pi, Theta).
    EXPECT_EQ(server_snapshot(r.fabric), before);
    expect_selections_equal(r.mgr->committed(), r.selection);
    ASSERT_EQ(r.mgr->client_tasks()[6].size(), 1u);
    EXPECT_EQ(r.mgr->client_tasks()[6][0].period, 200u);
}

TEST(reconfig_manager, requests_queue_fifo_one_transaction_at_a_time) {
    rig r;
    const auto first = r.mgr->submit(2, analysis::task_set{{100, 8}});
    const auto second = r.mgr->submit(9, analysis::task_set{{100, 6}});
    r.sim.run(3);
    EXPECT_TRUE(r.mgr->staging());
    EXPECT_EQ(r.mgr->backlog(), 2u);
    // The second request is not even decided while the first is staged.
    EXPECT_EQ(r.mgr->record(second).outcome, admission_outcome::pending);

    r.run_until_resolved(second);
    EXPECT_EQ(r.mgr->record(first).outcome, admission_outcome::committed);
    EXPECT_EQ(r.mgr->record(second).outcome, admission_outcome::committed);
    EXPECT_GE(r.mgr->record(second).decided_at,
              r.mgr->record(first).resolved_at);
    EXPECT_EQ(r.mgr->backlog(), 0u);
}

TEST(reconfig_manager, donate_and_restore_leaf_budget) {
    rig r;
    const auto& shape = r.selection.shape;
    const std::uint32_t order = shape.leaf_se_of_client(12);
    const std::uint32_t port = shape.leaf_port_of_client(12);
    const auto& sched = r.fabric.se_at(shape.leaf_level, order).scheduler();
    const auto committed_period = sched.server(port).period();
    const auto committed_budget = sched.server(port).budget();
    ASSERT_GT(committed_budget, 0u);

    r.mgr->donate_client_budget(12);
    EXPECT_EQ(sched.server(port).budget(), 0u);

    r.mgr->restore_client_budget(12);
    EXPECT_EQ(sched.server(port).period(), committed_period);
    EXPECT_EQ(sched.server(port).budget(), committed_budget);
}

TEST(reconfig_manager, full_queue_rejects_immediately_without_perturbation) {
    reconfig_config cfg;
    cfg.max_queue = 1;
    rig r(cfg);
    const auto before = server_snapshot(r.fabric);

    const auto first = r.mgr->submit(2, analysis::task_set{{100, 8}});
    const auto second = r.mgr->submit(9, analysis::task_set{{100, 6}});
    // The bound rejects at submission, before any tick: the admission
    // test never ran, the fabric is untouched.
    const auto& rec = r.mgr->record(second);
    EXPECT_EQ(rec.outcome, admission_outcome::rejected_queue_full);
    EXPECT_FALSE(rec.detail.empty());
    EXPECT_EQ(r.mgr->stats().rejected_queue_full, 1u);
    EXPECT_EQ(server_snapshot(r.fabric), before);
    expect_selections_equal(r.mgr->committed(), r.selection);

    // The rejection perturbed nothing downstream either: the run is
    // bit-identical to one where the shed request never arrived.
    r.run_until_resolved(first);
    EXPECT_EQ(r.mgr->record(first).outcome, admission_outcome::committed);
    rig twin(cfg);
    const auto twin_first = twin.mgr->submit(2, analysis::task_set{{100, 8}});
    twin.run_until_resolved(twin_first);
    EXPECT_EQ(server_snapshot(r.fabric), server_snapshot(twin.fabric));
    expect_selections_equal(r.mgr->committed(), twin.mgr->committed());
}

TEST(reconfig_manager, expired_deadline_rejects_without_perturbation) {
    rig r;
    // The first request stages for its propagation latency; the second
    // carries a deadline that passes while it waits in the queue.
    const auto first = r.mgr->submit(2, analysis::task_set{{100, 8}});
    const auto second = r.mgr->submit(9, analysis::task_set{{100, 6}},
                                      /*deadline=*/2);
    r.run_until_resolved(second);
    const auto& rec = r.mgr->record(second);
    EXPECT_EQ(rec.outcome, admission_outcome::rejected_deadline_expired);
    EXPECT_FALSE(rec.detail.empty());
    EXPECT_EQ(r.mgr->stats().rejected_deadline_expired, 1u);
    EXPECT_EQ(r.mgr->record(first).outcome, admission_outcome::committed);

    // Zero perturbation: state matches a run without the expired request.
    rig twin;
    const auto twin_first = twin.mgr->submit(2, analysis::task_set{{100, 8}});
    twin.run_until_resolved(twin_first);
    EXPECT_EQ(server_snapshot(r.fabric), server_snapshot(twin.fabric));
    expect_selections_equal(r.mgr->committed(), twin.mgr->committed());
    EXPECT_EQ(r.mgr->client_tasks()[9].size(),
              twin.mgr->client_tasks()[9].size());
    EXPECT_EQ(r.mgr->client_tasks()[9][0].period, 200u);
}

TEST(reconfig_manager, deadline_mid_staging_abandons_before_the_fabric) {
    rig r;
    // Stage with a deadline inside the propagation latency: the
    // transaction must be abandoned mid-staging (fabric untouched, next
    // FIFO entry unblocked) instead of running to commit -- the staging
    // latency models pseudo-polynomial admission work, so without this a
    // single expensive transaction can hold the queue arbitrarily long
    // past its caller's deadline.
    const auto first = r.mgr->submit(6, analysis::task_set{{100, 8}},
                                     /*deadline=*/10);
    const auto second = r.mgr->submit(2, analysis::task_set{{100, 6}});
    r.sim.run(3);
    ASSERT_TRUE(r.mgr->staging());
    ASSERT_GT(r.mgr->record(first).latency_cycles, 10u)
        << "staging latency too short to cross the deadline";

    r.run_until_resolved(first);
    const auto& rec = r.mgr->record(first);
    EXPECT_EQ(rec.outcome, admission_outcome::rejected_deadline_expired);
    EXPECT_NE(rec.detail.find("mid-staging"), std::string::npos);
    EXPECT_EQ(rec.resolved_at, 11u); // expiry is now > deadline
    EXPECT_EQ(r.mgr->stats().rejected_deadline_expired, 1u);
    EXPECT_EQ(r.mgr->stats().rolled_back, 0u);

    // The abandoned transaction unblocks the FIFO and left no trace: the
    // second request commits, and the end state matches a run where the
    // expired request never arrived.
    r.run_until_resolved(second);
    EXPECT_EQ(r.mgr->record(second).outcome, admission_outcome::committed);
    rig twin;
    const auto twin_second =
        twin.mgr->submit(2, analysis::task_set{{100, 6}});
    twin.run_until_resolved(twin_second);
    EXPECT_EQ(server_snapshot(r.fabric), server_snapshot(twin.fabric));
    expect_selections_equal(r.mgr->committed(), twin.mgr->committed());
    EXPECT_EQ(r.mgr->client_tasks()[6].size(), 1u);
    EXPECT_EQ(r.mgr->client_tasks()[6][0].period, 200u);
}

TEST(reconfig_manager, shares_one_selection_cache_with_whole_tree_selection) {
    // The reconfig_config::selection analysis_context carries a
    // selection_cache*: whole-tree selection (the testbench path) and the
    // manager's admission tests then hit the SAME entries, and a shared
    // cache changes no decision.
    analysis::selection_cache cache;
    reconfig_config cfg;
    cfg.selection.cache = &cache;
    rig cached(cfg);
    rig plain;

    // Warm the cache exactly as testbench whole-tree selection would:
    // same clients, same knobs, same cache.
    (void)analysis::select_tree_interfaces(cached.clients, cfg.selection);
    const auto warmed = cache.stats();
    EXPECT_GT(warmed.misses, 0u);

    // A detached admission evaluation (the svc::analysis_service entry
    // point) of an unchanged profile resolves the whole request path
    // under warm keys: pure hits, zero new misses.
    const auto noop =
        cached.mgr->evaluate(3, analysis::task_set{{200, 4}}, false);
    EXPECT_TRUE(noop.feasible);
    EXPECT_GT(cache.stats().hits, warmed.hits);
    EXPECT_EQ(cache.stats().misses, warmed.misses);

    // A changed profile misses on the changed keys, then a redo of the
    // same evaluation (svc's retry / crash-redo shape) re-hits them.
    const auto once = cache.stats();
    (void)cached.mgr->evaluate(3, analysis::task_set{{100, 8}}, false);
    const auto twice = cache.stats();
    EXPECT_GT(twice.misses, once.misses);
    (void)cached.mgr->evaluate(3, analysis::task_set{{100, 8}}, false);
    EXPECT_EQ(cache.stats().misses, twice.misses);
    EXPECT_GT(cache.stats().hits, twice.hits);

    // And the shared cache changes no decision: the committed admission
    // matches a cache-less manager's, port for port.
    const auto id_c = cached.mgr->submit(3, analysis::task_set{{100, 8}});
    cached.run_until_resolved(id_c);
    const auto id_p = plain.mgr->submit(3, analysis::task_set{{100, 8}});
    plain.run_until_resolved(id_p);
    EXPECT_EQ(cached.mgr->record(id_c).outcome,
              admission_outcome::committed);
    expect_selections_equal(cached.mgr->committed(),
                            plain.mgr->committed());
}

TEST(reconfig_manager, leave_request_frees_the_port) {
    rig r;
    const auto id = r.mgr->submit(5, analysis::task_set{});
    r.run_until_resolved(id);
    EXPECT_EQ(r.mgr->record(id).outcome, admission_outcome::committed);
    EXPECT_TRUE(r.mgr->client_tasks()[5].empty());
    const auto& shape = r.selection.shape;
    const auto& iface =
        r.mgr->committed()
            .levels[shape.leaf_level][shape.leaf_se_of_client(5)]
            .ports[shape.leaf_port_of_client(5)];
    EXPECT_TRUE(!iface || iface->budget == 0);
}

} // namespace
} // namespace bluescale::core
