#include <gtest/gtest.h>

#include <vector>

#include "core/scale_element.hpp"

namespace bluescale::core {
namespace {

mem_request req(request_id_t id, cycle_t deadline) {
    mem_request r;
    r.id = id;
    r.level_deadline = deadline;
    r.abs_deadline = deadline;
    return r;
}

struct rig {
    explicit rig(se_params params = {}) : se("SE", params) {
        se.bind_sink([this] { return sink_open; },
                     [this](mem_request r) { out.push_back(std::move(r)); });
    }
    void cycle(cycle_t& now, int cycles = 1) {
        for (int i = 0; i < cycles; ++i) {
            se.tick(now);
            se.commit();
            ++now;
        }
    }
    scale_element se;
    bool sink_open = true;
    std::vector<mem_request> out;
};

TEST(scale_element, unconfigured_forwards_earliest_deadline) {
    rig r;
    cycle_t now = 0;
    r.se.port_push(0, req(1, 300));
    r.se.port_push(1, req(2, 100));
    r.se.port_push(2, req(3, 200));
    r.cycle(now, 4);
    ASSERT_EQ(r.out.size(), 3u);
    EXPECT_EQ(r.out[0].id, 2u);
    EXPECT_EQ(r.out[1].id, 3u);
    EXPECT_EQ(r.out[2].id, 1u);
}

TEST(scale_element, one_forward_per_cycle) {
    rig r;
    cycle_t now = 0;
    for (int i = 0; i < 4; ++i) r.se.port_push(0, req(i, 100 + i));
    r.cycle(now, 2);
    EXPECT_EQ(r.out.size(), 1u); // loads commit at end of cycle 0
    r.cycle(now, 3);
    EXPECT_EQ(r.out.size(), 4u);
}

TEST(scale_element, respects_sink_backpressure) {
    rig r;
    r.sink_open = false;
    cycle_t now = 0;
    r.se.port_push(0, req(1, 10));
    r.cycle(now, 5);
    EXPECT_TRUE(r.out.empty());
    r.sink_open = true;
    r.cycle(now, 2);
    EXPECT_EQ(r.out.size(), 1u);
}

TEST(scale_element, port_backpressure_at_buffer_depth) {
    se_params p;
    p.buffer_depth = 2;
    rig r(p);
    EXPECT_TRUE(r.se.port_can_accept(0));
    r.se.port_push(0, req(1, 1));
    r.se.port_push(0, req(2, 2));
    EXPECT_FALSE(r.se.port_can_accept(0));
    EXPECT_TRUE(r.se.port_can_accept(1));
}

TEST(scale_element, budgeted_mode_throttles_to_interface) {
    // Port 0 gets (Pi=4, Theta=1): exactly one transaction per 4 units.
    se_params p;
    p.unit_cycles = 4;
    p.work_conserving = false;
    rig r(p);
    r.se.configure_port(0, 4, 1);
    cycle_t now = 0;
    // Keep the buffer saturated for 64 units = 256 cycles.
    for (int i = 0; i < 256; ++i) {
        while (r.se.port_can_accept(0)) {
            r.se.port_push(0, req(1000 + i, 10'000));
        }
        r.cycle(now);
    }
    // 64 units / 4 units per period = 16 periods -> 16 transactions.
    EXPECT_NEAR(static_cast<double>(r.out.size()), 16.0, 1.0);
}

TEST(scale_element, work_conserving_fallback_uses_idle_capacity) {
    se_params p;
    p.unit_cycles = 4;
    p.work_conserving = true;
    rig r(p);
    r.se.configure_port(0, 4, 1);
    cycle_t now = 0;
    for (int i = 0; i < 64; ++i) {
        while (r.se.port_can_accept(0)) {
            r.se.port_push(0, req(2000 + i, 10'000));
        }
        r.cycle(now);
    }
    // Fallback forwards every cycle once the budget is spent.
    EXPECT_GT(r.out.size(), 50u);
}

TEST(scale_element, budgeted_grant_restamps_level_deadline) {
    se_params p;
    p.unit_cycles = 4;
    rig r(p);
    r.se.configure_port(0, 8, 2);
    cycle_t now = 0;
    r.se.port_push(0, req(1, 999'999));
    r.cycle(now, 3);
    ASSERT_EQ(r.out.size(), 1u);
    // The forwarded request inherits the server job's deadline, which is
    // bounded by the period in cycles -- far below the original stamp.
    EXPECT_LE(r.out[0].level_deadline, 8u * 4u + 4u);
    EXPECT_EQ(r.out[0].abs_deadline, 999'999u); // original preserved
}

TEST(scale_element, unconfigured_keeps_level_deadline) {
    rig r;
    cycle_t now = 0;
    r.se.port_push(0, req(1, 777));
    r.cycle(now, 3);
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_EQ(r.out[0].level_deadline, 777u);
}

TEST(scale_element, gedf_across_ports_with_budgets) {
    se_params p;
    p.unit_cycles = 1; // units == cycles for clarity
    rig r(p);
    r.se.configure_port(0, 100, 50);
    r.se.configure_port(1, 10, 5);
    cycle_t now = 0;
    r.se.port_push(0, req(1, 5)); // earlier request deadline...
    r.se.port_push(1, req(2, 500));
    r.cycle(now, 3);
    ASSERT_EQ(r.out.size(), 2u);
    // ...but server deadlines rule the upper level: port 1 (10) < port 0
    // (100), so request 2 forwards first (Algorithm 1's outer loop).
    EXPECT_EQ(r.out[0].id, 2u);
}

TEST(scale_element, blocking_charged_across_all_buffers) {
    se_params p;
    p.unit_cycles = 1;
    rig r(p);
    r.se.configure_port(0, 2, 1);
    r.se.configure_port(1, 100, 1);
    cycle_t now = 0;
    r.se.port_push(0, req(1, 900));  // later deadline, but its server fires
    r.se.port_push(1, req(2, 5));    // earlier deadline, slower server
    r.cycle(now, 4);
    ASSERT_EQ(r.out.size(), 2u);
    const auto& victim =
        r.out[0].id == 2 ? r.out[1] : (r.out[0].id == 1 ? r.out[1] : r.out[0]);
    // Request 2 (deadline 5) waited while request 1 (deadline 900) was
    // granted at least once.
    bool found = false;
    for (const auto& o : r.out) {
        if (o.id == 2 && o.blocked_cycles > 0) found = true;
    }
    EXPECT_TRUE(found);
    (void)victim;
}

TEST(scale_element, counts_budgeted_vs_total_forwards) {
    se_params p;
    p.unit_cycles = 4;
    rig r(p);
    r.se.configure_port(0, 4, 1);
    cycle_t now = 0;
    for (int i = 0; i < 40; ++i) {
        while (r.se.port_can_accept(0)) r.se.port_push(0, req(i, 10'000));
        r.cycle(now);
    }
    EXPECT_EQ(r.se.forwarded(),
              r.se.forwarded_budgeted() +
                  (r.se.forwarded() - r.se.forwarded_budgeted()));
    EXPECT_GT(r.se.forwarded(), r.se.forwarded_budgeted());
    EXPECT_GT(r.se.forwarded_budgeted(), 0u);
}

TEST(scale_element, wait_stats_measure_queueing_time) {
    rig r;
    cycle_t now = 0;
    // Block the sink for 10 cycles so the request demonstrably queues.
    r.sink_open = false;
    mem_request q = req(1, 100);
    q.hop_arrival = 0;
    r.se.port_push(0, q);
    r.cycle(now, 10);
    r.sink_open = true;
    r.cycle(now, 2);
    ASSERT_EQ(r.out.size(), 1u);
    ASSERT_EQ(r.se.wait_stats().count(), 1u);
    EXPECT_GE(r.se.wait_stats().mean(), 10.0);
    // The forwarded request is re-stamped for the next hop.
    EXPECT_GE(r.out[0].hop_arrival, 10u);
}

TEST(scale_element, wait_stats_near_zero_when_uncontended) {
    rig r;
    cycle_t now = 5;
    mem_request q = req(1, 100);
    q.hop_arrival = now;
    r.se.port_push(0, q);
    r.cycle(now, 3);
    ASSERT_EQ(r.out.size(), 1u);
    EXPECT_LE(r.se.wait_stats().mean(), 2.0);
}

TEST(scale_element, reset_clears_buffers_and_counters) {
    rig r;
    cycle_t now = 0;
    r.se.port_push(0, req(1, 10));
    r.cycle(now, 2);
    r.se.reset();
    EXPECT_EQ(r.se.forwarded(), 0u);
    EXPECT_TRUE(r.se.buffer(0).empty());
}

} // namespace
} // namespace bluescale::core
