// Supply-conformance watchdog: online sbf conformance checks over
// sliding windows, typed alarms, and hysteresis-controlled overload
// shedding that protects hard real-time clients while best-effort
// clients absorb the loss.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/bluescale_ic.hpp"
#include "core/supply_watchdog.hpp"
#include "mem/memory_controller.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::core {
namespace {

mem_request req(request_id_t id, client_id_t client, cycle_t deadline,
                std::uint64_t addr = 0) {
    mem_request r;
    r.id = id;
    r.client = client;
    r.addr = addr;
    r.abs_deadline = deadline;
    r.level_deadline = deadline;
    return r;
}

/// Fabric + controller + watchdog, ticked manually so tests can place
/// deadline misses and backlog exactly where they want them.
struct rig {
    explicit rig(watchdog_config cfg)
        : fabric(16),
          clients(16, analysis::task_set{{200, 4}}),
          selection(analysis::select_tree_interfaces(clients)) {
        EXPECT_TRUE(selection.feasible);
        fabric.attach_memory(mem);
        fabric.set_response_handler([](mem_request&&) {});
        fabric.configure(selection);
        wd = std::make_unique<supply_watchdog>(fabric, &selection, cfg);
    }

    /// Ticks [from, to], optionally flooding client 0 so its request
    /// path stays backlogged.
    void run(cycle_t from, cycle_t to, bool flood = false) {
        for (cycle_t t = from; t <= to; ++t) {
            if (flood && fabric.client_can_accept(0)) {
                fabric.client_push(0, req(next_id++, 0, 1'000'000'000));
            }
            fabric.tick(t);
            mem.tick(t);
            wd->tick(t);
            // Latched-queue semantics: pushes (and forwards) only become
            // visible after the commit phase, as under sim::simulator.
            fabric.commit();
            mem.commit();
        }
    }

    bluescale_ic fabric;
    memory_controller mem;
    std::vector<analysis::task_set> clients;
    analysis::tree_selection selection;
    std::unique_ptr<supply_watchdog> wd;
    request_id_t next_id = 1;
};

watchdog_config tight_config() {
    watchdog_config cfg;
    cfg.check_period = 100;
    cfg.shed_enter_windows = 2;
    cfg.restore_windows = 2;
    cfg.restore_backoff = 2;
    return cfg;
}

TEST(supply_watchdog, quiet_system_raises_no_alarms) {
    rig r(tight_config());
    r.wd->track_client(0, client_class::hard, [] { return 0ull; });
    r.run(0, 1000);
    const auto& rep = r.wd->report();
    EXPECT_GE(rep.windows_checked, 9u);
    EXPECT_EQ(rep.violating_windows, 0u);
    EXPECT_EQ(rep.supply_shortfall_alarms, 0u);
    EXPECT_EQ(rep.deadline_alarms, 0u);
    EXPECT_EQ(rep.shed_events, 0u);
    EXPECT_FALSE(r.wd->shedding_now());
}

TEST(supply_watchdog, hard_miss_streak_sheds_best_effort_with_hysteresis) {
    rig r(tight_config());
    std::uint64_t hard_missed = 0;
    bool be_shed = false;
    std::uint64_t alarms_shed = 0;
    std::uint64_t alarms_restore = 0;
    r.wd->track_client(0, client_class::hard,
                       [&] { return hard_missed; });
    r.wd->track_client(15, client_class::best_effort, [] { return 0ull; },
                       [&](bool on) { be_shed = on; });
    r.wd->set_alarm_hook([&](watchdog_alarm a, cycle_t) {
        if (a == watchdog_alarm::overload_shed) ++alarms_shed;
        if (a == watchdog_alarm::overload_restore) ++alarms_restore;
    });

    // One hard miss per window for 10 windows: shed after the second
    // violating check, then NO oscillation while the violation persists.
    for (cycle_t t = 0; t <= 1000; ++t) {
        if (t % 100 == 50) ++hard_missed;
        r.wd->tick(t);
    }
    EXPECT_TRUE(r.wd->shedding_now());
    EXPECT_TRUE(be_shed);
    EXPECT_EQ(r.wd->report().shed_events, 1u);
    EXPECT_EQ(alarms_shed, 1u);
    EXPECT_GT(r.wd->report().deadline_alarms, 0u);
    EXPECT_GT(r.wd->report().hard_misses, 0u);

    // Two clean windows satisfy the initial restore requirement.
    for (cycle_t t = 1001; t <= 1200; ++t) r.wd->tick(t);
    EXPECT_FALSE(r.wd->shedding_now());
    EXPECT_FALSE(be_shed);
    EXPECT_EQ(r.wd->report().restore_events, 1u);
    EXPECT_EQ(alarms_restore, 1u);

    // The overload returns: shed again after two violating windows...
    for (cycle_t t = 1201; t <= 1400; ++t) {
        if (t % 100 == 50) ++hard_missed;
        r.wd->tick(t);
    }
    EXPECT_TRUE(r.wd->shedding_now());
    EXPECT_EQ(r.wd->report().shed_events, 2u);

    // ...but restoration now needs 2 x backoff = 4 clean windows: still
    // shed after 3, restored after the 4th (oscillation is bounded).
    for (cycle_t t = 1401; t <= 1700; ++t) r.wd->tick(t);
    EXPECT_TRUE(r.wd->shedding_now());
    for (cycle_t t = 1701; t <= 1800; ++t) r.wd->tick(t);
    EXPECT_FALSE(r.wd->shedding_now());
    EXPECT_EQ(r.wd->report().restore_events, 2u);
    EXPECT_GT(r.wd->report().shed_client_cycles, 0u);
}

TEST(supply_watchdog, stalled_backlogged_port_raises_supply_shortfall) {
    watchdog_config cfg;
    cfg.check_period = 2048; // long windows so sbf(window) > 0
    cfg.shedding = false;    // observe-only: alarms without action
    rig r(cfg);
    // Client 0's leaf SE is stalled for the whole run while its port is
    // kept backlogged: delivered supply 0 < margin x sbf(window).
    r.fabric.se_at(1, 0).set_stall_faults(
        sim::fault_window({{sim::fault_kind::se_stall, 0, 0, 30'000}}));
    r.run(0, 20'000, /*flood=*/true);

    const auto& rep = r.wd->report();
    EXPECT_GT(rep.windows_checked, 0u);
    EXPECT_GT(rep.violating_windows, 0u);
    EXPECT_GT(rep.supply_shortfall_alarms, 0u);
    // The master switch is off: alarms never turn into shedding.
    EXPECT_EQ(rep.shed_events, 0u);
    EXPECT_FALSE(r.wd->shedding_now());
}

TEST(supply_watchdog, healthy_backlogged_port_conforms) {
    watchdog_config cfg;
    cfg.check_period = 2048;
    rig r(cfg);
    r.run(0, 20'000, /*flood=*/true);
    // A healthy fabric delivers at least sbf to a backlogged port (the
    // offline supply-conformance property, checked online): no alarms.
    EXPECT_GT(r.wd->report().windows_checked, 0u);
    EXPECT_EQ(r.wd->report().supply_shortfall_alarms, 0u);
    EXPECT_EQ(r.wd->report().shed_events, 0u);
}

TEST(supply_watchdog, alarm_mid_restore_rearms_the_clean_streak) {
    rig r(tight_config()); // shed after 2 bad windows, restore after 2 clean
    std::uint64_t missed = 0;
    r.wd->track_client(0, client_class::hard, [&] { return missed; });
    r.wd->track_client(15, client_class::best_effort, [] { return 0ull; });

    // Windows end at t = 100, 200, ... Two violating windows shed.
    for (cycle_t t = 0; t <= 200; ++t) {
        if (t % 100 == 50) ++missed;
        r.wd->tick(t);
    }
    ASSERT_TRUE(r.wd->shedding_now());

    // One clean window, then a violating one mid-restore: the clean
    // streak re-arms, so the next single clean window must NOT restore.
    for (cycle_t t = 201; t <= 300; ++t) r.wd->tick(t);       // clean
    for (cycle_t t = 301; t <= 400; ++t) {                    // violating
        if (t == 350) ++missed;
        r.wd->tick(t);
    }
    for (cycle_t t = 401; t <= 500; ++t) r.wd->tick(t);       // clean #1
    EXPECT_TRUE(r.wd->shedding_now()) << "restored on a re-armed streak";
    EXPECT_EQ(r.wd->report().restore_events, 0u);

    // The full requirement (2 consecutive clean windows) restores.
    for (cycle_t t = 501; t <= 600; ++t) r.wd->tick(t);       // clean #2
    EXPECT_FALSE(r.wd->shedding_now());
    EXPECT_EQ(r.wd->report().restore_events, 1u);
}

TEST(supply_watchdog, shedding_with_no_best_effort_clients_is_safe) {
    rig r(tight_config());
    // Hard clients only: there is nothing to shed, but the alarm and
    // hysteresis machinery must neither divide by zero nor starve the
    // hard class.
    std::uint64_t missed = 0;
    bool hard_shed_called = false;
    r.wd->track_client(0, client_class::hard, [&] { return missed; },
                       [&](bool) { hard_shed_called = true; });
    r.wd->track_client(1, client_class::hard, [] { return 0ull; });

    for (cycle_t t = 0; t <= 500; ++t) {
        if (t % 100 == 50) ++missed;
        r.wd->tick(t);
    }
    // The overload episode is entered and alarmed...
    EXPECT_TRUE(r.wd->shedding_now());
    EXPECT_EQ(r.wd->report().shed_events, 1u);
    EXPECT_GT(r.wd->report().deadline_alarms, 0u);
    // ...but hard clients are never shed, even as the only population.
    EXPECT_FALSE(hard_shed_called);

    // Recovery restores cleanly with an empty shed set.
    for (cycle_t t = 501; t <= 800; ++t) r.wd->tick(t);
    EXPECT_FALSE(r.wd->shedding_now());
    EXPECT_EQ(r.wd->report().restore_events, 1u);
}

TEST(supply_watchdog, reset_clears_state_and_report) {
    rig r(tight_config());
    std::uint64_t missed = 0;
    r.wd->track_client(0, client_class::hard, [&] { return missed; });
    r.wd->track_client(15, client_class::best_effort, [] { return 0ull; });
    for (cycle_t t = 0; t <= 400; ++t) {
        if (t % 100 == 50) ++missed;
        r.wd->tick(t);
    }
    ASSERT_TRUE(r.wd->shedding_now());
    r.wd->reset();
    EXPECT_FALSE(r.wd->shedding_now());
    EXPECT_EQ(r.wd->report().windows_checked, 0u);
    EXPECT_EQ(r.wd->report().shed_events, 0u);
}

// Sustained overload under a stalled best-effort subtree: the watchdog
// sheds the best-effort clients (their issue streams throttle, their
// misses mount) while every hard real-time client keeps its contract and
// misses ZERO deadlines.
TEST(supply_watchdog, shedding_protects_hard_clients_under_overload) {
    constexpr std::uint32_t n = 16;
    constexpr cycle_t run_cycles = 40'000;

    // Admitted contracts are modest for everyone; the best-effort
    // clients (12-15, behind leaf SE(1, 3)) actually flood far beyond
    // their admitted demand, and their subtree is stalled on top.
    std::vector<analysis::task_set> rt(n, analysis::task_set{{200, 4}});
    auto selection = analysis::select_tree_interfaces(rt);
    ASSERT_TRUE(selection.feasible);

    bluescale_ic fabric(n);
    memory_controller mem;
    fabric.attach_memory(mem);
    fabric.configure(selection);
    fabric.se_at(1, 3).set_stall_faults(sim::fault_window(
        {{sim::fault_kind::se_stall, 0, 0, run_cycles}}));

    watchdog_config cfg;
    cfg.check_period = 2048;
    cfg.shed_enter_windows = 2;
    cfg.restore_windows = 2;
    cfg.restore_backoff = 2;
    supply_watchdog wd(fabric, &selection, cfg);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < n; ++c) {
        const bool best_effort = c >= 12;
        workload::memory_task_set tasks{
            best_effort
                ? workload::memory_task{0, 50, 40, false}  // util 0.8
                : workload::memory_task{0, 200, 4, false}}; // util 0.02
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, std::move(tasks), fabric, 100 + c));
        auto* client = clients.back().get();
        wd.track_client(
            c,
            best_effort ? client_class::best_effort : client_class::hard,
            [client] { return client->stats().missed(); },
            [client](bool on) { client->set_shed(on); });
    }
    fabric.set_response_handler([&](mem_request&& r) {
        clients[r.client]->on_response(std::move(r));
    });

    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(fabric);
    sim.add(mem);
    sim.add(wd); // last, as in harness::testbench
    sim.run(run_cycles);
    for (auto& c : clients) c->finalize(sim.now());

    const auto& rep = wd.report();
    EXPECT_GT(rep.supply_shortfall_alarms, 0u);
    EXPECT_GE(rep.shed_events, 1u);
    EXPECT_GT(rep.shed_client_cycles, 0u);

    std::uint64_t hard_missed = 0;
    std::uint64_t be_missed = 0;
    std::uint64_t shed_cycles = 0;
    for (std::uint32_t c = 0; c < n; ++c) {
        const auto& s = clients[c]->stats();
        if (c >= 12) {
            be_missed += s.missed();
            shed_cycles += s.shed_cycles();
        } else {
            hard_missed += s.missed();
        }
    }
    // Hard real-time clients ride through untouched; the best-effort
    // class absorbs the whole loss.
    EXPECT_EQ(hard_missed, 0u);
    EXPECT_GT(be_missed, 0u);
    EXPECT_GT(shed_cycles, 0u);
}

} // namespace
} // namespace bluescale::core
