#include <gtest/gtest.h>

#include "core/bluescale_ic.hpp"
#include "harness/factory.hpp"

namespace bluescale::harness {
namespace {

TEST(factory, builds_every_kind) {
    ic_build_options opts;
    opts.n_clients = 16;
    opts.client_utilizations.assign(16, 0.05);
    for (ic_kind kind : k_all_kinds) {
        auto ic = make_interconnect(kind, opts);
        ASSERT_NE(ic, nullptr) << kind_name(kind);
        EXPECT_EQ(ic->num_clients(), 16u);
        EXPECT_TRUE(ic->client_can_accept(0));
    }
}

TEST(factory, kind_names_unique) {
    std::set<std::string> names;
    for (ic_kind kind : k_all_kinds) {
        EXPECT_TRUE(names.insert(kind_name(kind)).second);
    }
}

TEST(factory, kinds_map_to_cost_model_designs) {
    EXPECT_EQ(to_design(ic_kind::bluescale), hwcost::design::bluescale);
    EXPECT_EQ(to_design(ic_kind::axi_icrt), hwcost::design::axi_icrt);
    EXPECT_EQ(to_design(ic_kind::gsmtree_tdm), hwcost::design::gsmtree);
    EXPECT_EQ(to_design(ic_kind::gsmtree_fbsp), hwcost::design::gsmtree);
}

TEST(factory, bluescale_applies_selection) {
    std::vector<analysis::task_set> clients(16);
    for (auto& s : clients) s.push_back({200, 4});
    const auto sel = analysis::select_tree_interfaces(clients);
    ASSERT_TRUE(sel.feasible);

    ic_build_options opts;
    opts.n_clients = 16;
    opts.selection = &sel;
    auto ic = make_interconnect(ic_kind::bluescale, opts);
    auto* bs = dynamic_cast<core::bluescale_ic*>(ic.get());
    ASSERT_NE(bs, nullptr);
    EXPECT_TRUE(bs->se_at(0, 0).scheduler().configured());
}

TEST(factory, bluescale_without_selection_unconfigured) {
    ic_build_options opts;
    opts.n_clients = 16;
    auto ic = make_interconnect(ic_kind::bluescale, opts);
    auto* bs = dynamic_cast<core::bluescale_ic*>(ic.get());
    ASSERT_NE(bs, nullptr);
    EXPECT_FALSE(bs->se_at(0, 0).scheduler().configured());
}

TEST(factory, sixty_four_clients_all_kinds) {
    ic_build_options opts;
    opts.n_clients = 64;
    opts.client_utilizations.assign(64, 0.0125);
    for (ic_kind kind : k_all_kinds) {
        auto ic = make_interconnect(kind, opts);
        ASSERT_NE(ic, nullptr);
        EXPECT_EQ(ic->num_clients(), 64u);
        EXPECT_GE(ic->depth_of(0), 1u);
    }
}

TEST(factory, extended_kinds_superset_of_paper_six) {
    std::set<ic_kind> paper(std::begin(k_all_kinds),
                            std::end(k_all_kinds));
    std::set<ic_kind> extended(std::begin(k_extended_kinds),
                               std::end(k_extended_kinds));
    EXPECT_EQ(paper.size(), 6u);
    EXPECT_GT(extended.size(), paper.size());
    for (ic_kind k : paper) EXPECT_TRUE(extended.count(k));
}

TEST(factory, builds_hyperconnect) {
    ic_build_options opts;
    opts.n_clients = 16;
    auto ic = make_interconnect(ic_kind::axi_hyperconnect, opts);
    ASSERT_NE(ic, nullptr);
    EXPECT_EQ(ic->num_clients(), 16u);
    EXPECT_STREQ(kind_name(ic_kind::axi_hyperconnect),
                 "AXI-HyperConnect");
    EXPECT_EQ(to_design(ic_kind::axi_hyperconnect),
              hwcost::design::axi_icrt);
}

} // namespace
} // namespace bluescale::harness
