#include <gtest/gtest.h>

#include "harness/factory.hpp"
#include "harness/fig6_experiment.hpp"

namespace bluescale::harness {
namespace {

fig6_config small_config() {
    fig6_config cfg;
    cfg.n_clients = 16;
    cfg.trials = 2;
    cfg.measure_cycles = 8'000;
    cfg.seed = 99;
    return cfg;
}

TEST(fig6, produces_per_trial_samples) {
    const auto r = run_fig6(ic_kind::bluescale, small_config());
    EXPECT_EQ(r.blocking_us.count(), 2u);
    EXPECT_EQ(r.miss_ratio.count(), 2u);
    EXPECT_EQ(r.n_clients, 16u);
    EXPECT_GT(r.system_clock_mhz, 0.0);
}

TEST(fig6, bluescale_selection_feasible_at_paper_utilizations) {
    const auto r = run_fig6(ic_kind::bluescale, small_config());
    EXPECT_EQ(r.feasible_trials, 2u);
}

TEST(fig6, metrics_within_sane_ranges) {
    for (ic_kind kind :
         {ic_kind::bluescale, ic_kind::bluetree, ic_kind::gsmtree_tdm}) {
        const auto r = run_fig6(kind, small_config());
        EXPECT_GE(r.miss_ratio.min(), 0.0) << kind_name(kind);
        EXPECT_LE(r.miss_ratio.max(), 1.0) << kind_name(kind);
        EXPECT_GE(r.blocking_us.min(), 0.0) << kind_name(kind);
        EXPECT_LE(r.blocking_us.mean(), r.worst_blocking_us.max())
            << kind_name(kind);
    }
}

TEST(fig6, deterministic_given_seed) {
    const auto a = run_fig6(ic_kind::bluetree, small_config());
    const auto b = run_fig6(ic_kind::bluetree, small_config());
    EXPECT_EQ(a.blocking_us.mean(), b.blocking_us.mean());
    EXPECT_EQ(a.miss_ratio.mean(), b.miss_ratio.mean());
}

TEST(fig6, different_seeds_differ) {
    auto cfg = small_config();
    const auto a = run_fig6(ic_kind::bluetree, cfg);
    cfg.seed = 12345;
    const auto b = run_fig6(ic_kind::bluetree, cfg);
    EXPECT_NE(a.blocking_us.mean(), b.blocking_us.mean());
}

TEST(fig6, run_all_covers_six_designs) {
    auto cfg = small_config();
    cfg.trials = 1;
    const auto all = run_fig6_all(cfg);
    ASSERT_EQ(all.size(), 6u);
    std::set<ic_kind> kinds;
    for (const auto& r : all) kinds.insert(r.kind);
    EXPECT_EQ(kinds.size(), 6u);
}

TEST(fig6, extended_kind_runs_through_harness) {
    const auto r = run_fig6(ic_kind::axi_hyperconnect, small_config());
    EXPECT_EQ(r.blocking_us.count(), 2u);
    EXPECT_GE(r.miss_ratio.min(), 0.0);
    EXPECT_LE(r.miss_ratio.max(), 1.0);
}

TEST(fig6, parallel_trials_bit_identical_to_serial) {
    // The execution-layer contract: aggregates are exactly equal (not
    // just close) for any thread count, because per-trial results are
    // merged in trial order.
    auto cfg = small_config();
    cfg.trials = 6;
    for (ic_kind kind : {ic_kind::bluescale, ic_kind::bluetree}) {
        cfg.threads = 1;
        const auto serial = run_fig6(kind, cfg);
        cfg.threads = 4;
        const auto parallel = run_fig6(kind, cfg);

        ASSERT_EQ(serial.blocking_us.count(), parallel.blocking_us.count());
        EXPECT_EQ(serial.blocking_us.samples(),
                  parallel.blocking_us.samples())
            << kind_name(kind);
        EXPECT_EQ(serial.worst_blocking_us.samples(),
                  parallel.worst_blocking_us.samples())
            << kind_name(kind);
        EXPECT_EQ(serial.miss_ratio.samples(), parallel.miss_ratio.samples())
            << kind_name(kind);
        EXPECT_EQ(serial.blocking_us.mean(), parallel.blocking_us.mean());
        EXPECT_EQ(serial.blocking_us.stddev(),
                  parallel.blocking_us.stddev());
        EXPECT_EQ(serial.miss_ratio.mean(), parallel.miss_ratio.mean());
        EXPECT_EQ(serial.feasible_trials, parallel.feasible_trials);
    }
}

TEST(fig6, se_override_applies) {
    auto cfg = small_config();
    cfg.trials = 1;
    core::se_params se;
    se.buffer_depth = 4;
    se.policy = core::server_policy::fixed_priority;
    cfg.bluescale_se = se;
    const auto r = run_fig6(ic_kind::bluescale, cfg);
    EXPECT_EQ(r.blocking_us.count(), 1u); // just runs through
}

} // namespace
} // namespace bluescale::harness
