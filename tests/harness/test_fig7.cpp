#include <gtest/gtest.h>

#include "harness/fig7_experiment.hpp"

namespace bluescale::harness {
namespace {

fig7_config small_config() {
    fig7_config cfg;
    cfg.n_processors = 16;
    cfg.trials = 2;
    cfg.measure_cycles = 15'000;
    cfg.util_lo = 0.3;
    cfg.util_hi = 0.5;
    cfg.util_step = 0.2;
    cfg.seed = 7;
    return cfg;
}

TEST(fig7, sweep_covers_requested_points) {
    const auto r = run_fig7(ic_kind::bluescale, small_config());
    ASSERT_EQ(r.points.size(), 2u);
    EXPECT_DOUBLE_EQ(r.points[0].target_utilization, 0.3);
    EXPECT_DOUBLE_EQ(r.points[1].target_utilization, 0.5);
}

TEST(fig7, success_ratio_in_unit_range) {
    for (ic_kind kind : {ic_kind::bluescale, ic_kind::bluetree}) {
        const auto r = run_fig7(kind, small_config());
        for (const auto& p : r.points) {
            EXPECT_GE(p.success_ratio, 0.0);
            EXPECT_LE(p.success_ratio, 1.0);
            EXPECT_GE(p.app_miss_ratio, 0.0);
            EXPECT_LE(p.app_miss_ratio, 1.0);
        }
    }
}

TEST(fig7, all_designs_succeed_at_low_utilization) {
    auto cfg = small_config();
    cfg.util_lo = cfg.util_hi = 0.3;
    for (ic_kind kind : k_all_kinds) {
        const auto r = run_fig7(kind, cfg);
        ASSERT_EQ(r.points.size(), 1u);
        EXPECT_EQ(r.points[0].success_ratio, 1.0) << kind_name(kind);
    }
}

TEST(fig7, trial_deterministic_given_seed) {
    const auto cfg = small_config();
    double m1 = 0, m2 = 0;
    const bool a = run_fig7_trial(ic_kind::bluetree, cfg, 0.4, 99, &m1);
    const bool b = run_fig7_trial(ic_kind::bluetree, cfg, 0.4, 99, &m2);
    EXPECT_EQ(a, b);
    EXPECT_EQ(m1, m2);
}

TEST(fig7, run_all_covers_six_designs) {
    auto cfg = small_config();
    cfg.trials = 1;
    cfg.util_lo = cfg.util_hi = 0.4;
    const auto all = run_fig7_all(cfg);
    ASSERT_EQ(all.size(), 6u);
}

TEST(fig7, parallel_sweep_bit_identical_to_serial) {
    auto cfg = small_config();
    cfg.trials = 3;
    cfg.util_lo = 0.3;
    cfg.util_hi = 0.5;
    cfg.util_step = 0.2;
    cfg.threads = 1;
    const auto serial = run_fig7(ic_kind::bluescale, cfg);
    cfg.threads = 4;
    const auto parallel = run_fig7(ic_kind::bluescale, cfg);

    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        EXPECT_EQ(serial.points[i].target_utilization,
                  parallel.points[i].target_utilization);
        EXPECT_EQ(serial.points[i].success_ratio,
                  parallel.points[i].success_ratio);
        EXPECT_EQ(serial.points[i].app_miss_ratio,
                  parallel.points[i].app_miss_ratio);
    }
}

TEST(fig7, sixty_four_core_configuration_runs) {
    auto cfg = small_config();
    cfg.n_processors = 64;
    cfg.trials = 1;
    cfg.util_lo = cfg.util_hi = 0.3;
    const auto r = run_fig7(ic_kind::bluescale, cfg);
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_EQ(r.n_processors, 64u);
}

} // namespace
} // namespace bluescale::harness
