// Maintenance experiment: the maintenance-aware admission story and the
// trial runner's bit-identical-for-any-thread-count contract.
//
// The headline assertion (ISSUE acceptance): under identical
// maintenance-storm campaigns, hard clients admitted with the
// maintenance-corrected supply bound miss zero deadlines while the
// watchdog sheds best-effort traffic; admission against the raw sbf
// under-provisions and hard clients miss.
#include <gtest/gtest.h>

#include "harness/maintenance_experiment.hpp"
#include "mem/memory_subsystem.hpp"

namespace bluescale::harness {
namespace {

/// Heavy-but-admissible maintenance: hot device (2x DDR3 refresh rate)
/// plus background scrubbing. RowHammer mitigation is deliberately off:
/// its worst-case charge (every activation a hammer) is pessimistic
/// enough to push this near-capacity workload past the corrected
/// admission bound -- the bench sweep and the maintenance-engine unit
/// tests cover the hammer path.
memctrl_config heavy_maintenance_memctrl() {
    memctrl_config mc;
    mc.timing.t_refi = 975;
    mc.timing.t_rfc = 65;
    mc.maintenance.scrub_interval = 2048;
    mc.maintenance.scrub_duration = 32;
    return mc;
}

/// The acceptance scenario: light hard control traffic plus heavy
/// sheddable best-effort bulk, recurring maintenance storms (unmodeled
/// excess scrubbing) long enough to build real backlog but well under
/// the hard deadlines, and a watchdog fast enough to shed mid-storm.
maintenance_exp_config storm_config(bool aware, unsigned threads = 1) {
    maintenance_exp_config cfg;
    cfg.trials = 3;
    cfg.measure_cycles = 60'000;
    cfg.seed = 1;
    cfg.threads = threads;
    cfg.maintenance_aware = aware;
    cfg.memctrl = heavy_maintenance_memctrl();
    cfg.util_lo = 0.18;
    cfg.util_hi = 0.28;
    cfg.taskset.min_period_units = 400;
    cfg.best_effort_clients = 6;
    cfg.best_effort_util = 0.44;
    cfg.storm_intensity = 0.5;
    cfg.storm_min_duration = 192;
    cfg.storm_max_duration = 384;
    cfg.watchdog.check_period = 512;
    cfg.watchdog.shed_enter_windows = 1;
    return cfg;
}

void expect_identical(const maintenance_exp_result& a,
                      const maintenance_exp_result& b) {
    // Bitwise-equal aggregates: any divergence (scheduling, shared rng,
    // float summation order) would show up here.
    EXPECT_EQ(a.hard_miss_ratio.samples(), b.hard_miss_ratio.samples());
    EXPECT_EQ(a.best_effort_miss_ratio.samples(),
              b.best_effort_miss_ratio.samples());
    EXPECT_EQ(a.p99_latency_cycles.samples(),
              b.p99_latency_cycles.samples());
    EXPECT_EQ(a.hard_misses, b.hard_misses);
    EXPECT_EQ(a.best_effort_misses, b.best_effort_misses);
    EXPECT_EQ(a.refreshes, b.refreshes);
    EXPECT_EQ(a.scrubs, b.scrubs);
    EXPECT_EQ(a.hammer_mitigations, b.hammer_mitigations);
    EXPECT_EQ(a.maintenance_stolen_cycles, b.maintenance_stolen_cycles);
    EXPECT_EQ(a.maintenance_storm_cycles, b.maintenance_storm_cycles);
    EXPECT_EQ(a.injected_storms, b.injected_storms);
    EXPECT_EQ(a.windows_checked, b.windows_checked);
    EXPECT_EQ(a.supply_shortfall_alarms, b.supply_shortfall_alarms);
    EXPECT_EQ(a.deadline_alarms, b.deadline_alarms);
    EXPECT_EQ(a.shed_events, b.shed_events);
    EXPECT_EQ(a.restore_events, b.restore_events);
    EXPECT_EQ(a.shed_client_cycles, b.shed_client_cycles);
    EXPECT_EQ(a.feasible_trials, b.feasible_trials);
}

TEST(maintenance_experiment, parallel_sweep_matches_serial) {
    const auto serial = run_maintenance_experiment(storm_config(true, 1));
    const auto parallel =
        run_maintenance_experiment(storm_config(true, 4));
    expect_identical(serial, parallel);
}

TEST(maintenance_experiment, repeated_run_is_reproducible) {
    const auto a = run_maintenance_experiment(storm_config(false, 2));
    const auto b = run_maintenance_experiment(storm_config(false, 2));
    expect_identical(a, b);
}

TEST(maintenance_experiment, modeled_maintenance_never_alarms_when_aware) {
    // No storms: every stall the device suffers is in the maintenance
    // model, so the corrected watchdog must stay silent and nothing is
    // shed -- refresh and scrub alone are budgeted, not anomalous.
    auto cfg = storm_config(true);
    cfg.storm_intensity = 0.0;
    const auto r = run_maintenance_experiment(cfg);
    ASSERT_GE(r.feasible_trials, 2u);
    EXPECT_GT(r.refreshes, 0u);
    EXPECT_GT(r.scrubs, 0u);
    EXPECT_GT(r.windows_checked, 0u);
    EXPECT_EQ(r.supply_shortfall_alarms, 0u);
    EXPECT_EQ(r.shed_events, 0u);
    EXPECT_EQ(r.hard_misses, 0u);
}

TEST(maintenance_experiment, corrected_sbf_survives_maintenance_storms) {
    // The acceptance scenario: identical workloads and storm schedules,
    // only the supply model differs.
    const auto aware = run_maintenance_experiment(storm_config(true));
    const auto unaware = run_maintenance_experiment(storm_config(false));

    // Raw-sbf admission accepts every draw; corrected admission refuses
    // the over-committed one (refusal IS the maintenance-aware
    // behavior: that workload cannot be guaranteed once refresh and
    // scrub are charged) and admits the rest.
    ASSERT_EQ(unaware.feasible_trials, storm_config(false).trials);
    ASSERT_GE(aware.feasible_trials, 2u);
    ASSERT_GT(aware.injected_storms, 0u);

    // Corrected admission: hard clients ride out the storms miss-free;
    // the watchdog sees the unmodeled theft (supply alarms) and sheds
    // best-effort traffic to protect them.
    EXPECT_EQ(aware.hard_misses, 0u);
    EXPECT_GT(aware.supply_shortfall_alarms, 0u);
    EXPECT_GT(aware.shed_events, 0u);
    EXPECT_GT(aware.shed_client_cycles, 0u);

    // Raw-sbf admission under-provisions: the same storm campaign
    // pushes hard clients over their deadlines.
    EXPECT_GT(unaware.hard_misses, 0u);
    EXPECT_GT(unaware.best_effort_misses, 0u);
}

} // namespace
} // namespace bluescale::harness
