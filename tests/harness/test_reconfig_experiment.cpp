// Reconfiguration experiment determinism and plumbing: scheduled
// admission requests must preserve the trial runner's bit-identical-for-
// any-thread-count contract, BlueScale must actually admit and commit
// (and reject infeasible churn with zero perturbation), and the baseline
// must apply everything unconditionally.
#include <gtest/gtest.h>

#include "harness/reconfig_experiment.hpp"

namespace bluescale::harness {
namespace {

reconfig_exp_config small_config(unsigned threads, double rate) {
    reconfig_exp_config cfg;
    cfg.trials = 3;
    cfg.measure_cycles = 30'000;
    cfg.seed = 11;
    cfg.threads = threads;
    cfg.events_per_kcycle = rate;
    cfg.reconfig_warmup = 2'000;
    return cfg;
}

void expect_identical(const reconfig_result& a, const reconfig_result& b) {
    // Bitwise-equal aggregates: any divergence (scheduling, shared rng,
    // float summation order) would show up here.
    EXPECT_EQ(a.miss_ratio.samples(), b.miss_ratio.samples());
    EXPECT_EQ(a.reconfig_latency_cycles.samples(),
              b.reconfig_latency_cycles.samples());
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.rolled_back, b.rolled_back);
    EXPECT_EQ(a.rejected_infeasible, b.rejected_infeasible);
    EXPECT_EQ(a.rejected_overutilized, b.rejected_overutilized);
    EXPECT_EQ(a.rejected_path_hazard, b.rejected_path_hazard);
    EXPECT_EQ(a.transition_misses, b.transition_misses);
    EXPECT_EQ(a.applied_unchecked, b.applied_unchecked);
    EXPECT_EQ(a.windows_checked, b.windows_checked);
    EXPECT_EQ(a.violating_windows, b.violating_windows);
    EXPECT_EQ(a.supply_shortfall_alarms, b.supply_shortfall_alarms);
    EXPECT_EQ(a.shed_events, b.shed_events);
    EXPECT_EQ(a.restore_events, b.restore_events);
    EXPECT_EQ(a.shed_client_cycles, b.shed_client_cycles);
    EXPECT_EQ(a.hard_misses, b.hard_misses);
    EXPECT_EQ(a.best_effort_misses, b.best_effort_misses);
    EXPECT_EQ(a.shed_deferrals, b.shed_deferrals);
    EXPECT_EQ(a.live_reconfigurations, b.live_reconfigurations);
    EXPECT_EQ(a.feasible_trials, b.feasible_trials);
}

TEST(reconfig_experiment, parallel_sweep_matches_serial) {
    auto serial_cfg = small_config(1, 0.5);
    auto parallel_cfg = small_config(4, 0.5);
    // Include concurrent faults so hazard rollbacks are exercised too.
    serial_cfg.fault_intensity = parallel_cfg.fault_intensity = 0.3;
    const auto serial = run_reconfig(ic_kind::bluescale, serial_cfg);
    const auto parallel = run_reconfig(ic_kind::bluescale, parallel_cfg);
    expect_identical(serial, parallel);
}

TEST(reconfig_experiment, baseline_parallel_sweep_matches_serial) {
    const auto serial =
        run_reconfig(ic_kind::bluetree, small_config(1, 0.5));
    const auto parallel =
        run_reconfig(ic_kind::bluetree, small_config(4, 0.5));
    expect_identical(serial, parallel);
}

TEST(reconfig_experiment, repeated_run_is_reproducible) {
    const auto a = run_reconfig(ic_kind::bluescale, small_config(2, 0.5));
    const auto b = run_reconfig(ic_kind::bluescale, small_config(2, 0.5));
    expect_identical(a, b);
}

TEST(reconfig_experiment, bluescale_admits_and_commits) {
    const auto r = run_reconfig(ic_kind::bluescale, small_config(2, 0.5));
    EXPECT_GT(r.submitted, 0u);
    EXPECT_GT(r.admitted, 0u);
    EXPECT_GT(r.committed, 0u);
    EXPECT_EQ(r.applied_unchecked, 0u);
    // Every commit -- and nothing else -- swaps a live task set.
    EXPECT_EQ(r.live_reconfigurations, r.committed);
    EXPECT_GT(r.reconfig_latency_cycles.count(), 0u);
    EXPECT_GT(r.reconfig_latency_cycles.mean(), 0.0);
    EXPECT_GT(r.windows_checked, 0u);
}

TEST(reconfig_experiment, baseline_applies_unconditionally) {
    const auto r = run_reconfig(ic_kind::bluetree, small_config(2, 0.5));
    EXPECT_EQ(r.submitted, 0u);
    EXPECT_EQ(r.admitted, 0u);
    EXPECT_GT(r.applied_unchecked, 0u);
    EXPECT_EQ(r.live_reconfigurations, r.applied_unchecked);
    // No admission control, no watchdog: the counters stay silent.
    EXPECT_EQ(r.windows_checked, 0u);
    EXPECT_EQ(r.shed_events, 0u);
}

TEST(reconfig_experiment, zero_rate_means_no_requests) {
    const auto r = run_reconfig(ic_kind::bluescale, small_config(2, 0.0));
    EXPECT_EQ(r.submitted, 0u);
    EXPECT_EQ(r.committed, 0u);
    EXPECT_EQ(r.live_reconfigurations, 0u);
}

TEST(reconfig_experiment, rejected_churn_is_bit_identical_to_no_requests) {
    // Every scheduled request is a join demanding 150-200% of the whole
    // fabric's bandwidth for one client: infeasible no matter what the
    // other clients hold, so every admission test must reject -- and a
    // fully rejected run must leave every client metric bit-identical to
    // a run where no request ever arrived.
    auto churn_cfg = small_config(2, 0.5);
    churn_cfg.schedule.scale_up_weight = 0.0;
    churn_cfg.schedule.scale_down_weight = 0.0;
    churn_cfg.schedule.join_weight = 1.0;
    churn_cfg.schedule.leave_weight = 0.0;
    churn_cfg.schedule.magnitude_lo = 1.5;
    churn_cfg.schedule.magnitude_hi = 2.0;
    const auto churn = run_reconfig(ic_kind::bluescale, churn_cfg);
    const auto quiet = run_reconfig(ic_kind::bluescale, small_config(2, 0.0));

    EXPECT_GT(churn.submitted, 0u);
    EXPECT_EQ(churn.admitted, 0u);
    EXPECT_EQ(churn.committed, 0u);
    EXPECT_GT(churn.rejected_infeasible + churn.rejected_overutilized, 0u);
    EXPECT_EQ(churn.live_reconfigurations, 0u);

    // Zero perturbation, observed end to end through the whole stack.
    EXPECT_EQ(churn.miss_ratio.samples(), quiet.miss_ratio.samples());
    EXPECT_EQ(churn.hard_misses, quiet.hard_misses);
    EXPECT_EQ(churn.best_effort_misses, quiet.best_effort_misses);
    EXPECT_EQ(churn.violating_windows, quiet.violating_windows);
    EXPECT_EQ(churn.shed_events, quiet.shed_events);
}

} // namespace
} // namespace bluescale::harness
