// Resilience experiment determinism and plumbing: the fault campaign,
// recovery, and degraded-mode paths must preserve the trial runner's
// bit-identical-for-any-thread-count contract, and non-zero intensity
// must actually inject (non-zero fault and recovery counters).
#include <gtest/gtest.h>

#include "harness/resilience_experiment.hpp"

namespace bluescale::harness {
namespace {

resilience_config small_config(unsigned threads, double intensity) {
    resilience_config cfg;
    cfg.trials = 3;
    cfg.measure_cycles = 30'000;
    cfg.seed = 11;
    cfg.threads = threads;
    cfg.fault_intensity = intensity;
    return cfg;
}

void expect_identical(const resilience_result& a,
                      const resilience_result& b) {
    // Bitwise-equal aggregates: any divergence (scheduling, shared rng,
    // float summation order) would show up here.
    EXPECT_EQ(a.miss_ratio.samples(), b.miss_ratio.samples());
    EXPECT_EQ(a.p99_latency_cycles.samples(),
              b.p99_latency_cycles.samples());
    EXPECT_EQ(a.worst_latency_cycles.samples(),
              b.worst_latency_cycles.samples());
    EXPECT_EQ(a.time_to_recover_cycles.samples(),
              b.time_to_recover_cycles.samples());
    EXPECT_EQ(a.injected_events, b.injected_events);
    EXPECT_EQ(a.stall_windows, b.stall_windows);
    EXPECT_EQ(a.se_stall_cycles, b.se_stall_cycles);
    EXPECT_EQ(a.link_drops, b.link_drops);
    EXPECT_EQ(a.ecc_retries, b.ecc_retries);
    EXPECT_EQ(a.uncorrected_errors, b.uncorrected_errors);
    EXPECT_EQ(a.storm_cycles, b.storm_cycles);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.retry_exhausted, b.retry_exhausted);
    EXPECT_EQ(a.stale_responses, b.stale_responses);
    EXPECT_EQ(a.failed_responses, b.failed_responses);
    EXPECT_EQ(a.degrade_events, b.degrade_events);
    EXPECT_EQ(a.recovery_events, b.recovery_events);
    EXPECT_EQ(a.degraded_se_cycles, b.degraded_se_cycles);
    EXPECT_EQ(a.feasible_trials, b.feasible_trials);
}

TEST(resilience, parallel_sweep_matches_serial_under_faults) {
    const auto serial =
        run_resilience(ic_kind::bluescale, small_config(1, 0.5));
    const auto parallel =
        run_resilience(ic_kind::bluescale, small_config(4, 0.5));
    expect_identical(serial, parallel);
}

TEST(resilience, baseline_parallel_sweep_matches_serial) {
    const auto serial =
        run_resilience(ic_kind::bluetree, small_config(1, 0.5));
    const auto parallel =
        run_resilience(ic_kind::bluetree, small_config(4, 0.5));
    expect_identical(serial, parallel);
}

TEST(resilience, repeated_run_is_reproducible) {
    const auto a = run_resilience(ic_kind::bluescale, small_config(2, 1.0));
    const auto b = run_resilience(ic_kind::bluescale, small_config(2, 1.0));
    expect_identical(a, b);
}

TEST(resilience, nonzero_intensity_injects_and_recovers) {
    const auto r =
        run_resilience(ic_kind::bluescale, small_config(2, 1.0));
    EXPECT_GT(r.injected_events, 0u);
    EXPECT_GT(r.se_stall_cycles, 0u);
    EXPECT_GT(r.ecc_retries + r.uncorrected_errors + r.link_drops +
                  r.storm_cycles,
              0u);
    EXPECT_GT(r.retries, 0u);
    EXPECT_GT(r.timeouts, 0u);
}

TEST(resilience, zero_intensity_is_fault_free) {
    const auto r =
        run_resilience(ic_kind::bluescale, small_config(2, 0.0));
    EXPECT_EQ(r.injected_events, 0u);
    EXPECT_EQ(r.se_stall_cycles, 0u);
    EXPECT_EQ(r.link_drops, 0u);
    EXPECT_EQ(r.ecc_retries, 0u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(r.degrade_events, 0u);
}

TEST(resilience, baselines_see_no_se_faults_but_share_the_rest) {
    const auto r =
        run_resilience(ic_kind::bluetree, small_config(2, 1.0));
    // No SE fabric: stall and degraded-mode counters stay zero, while
    // the memory-side faults (and the recovery they trigger) still bite.
    EXPECT_EQ(r.se_stall_cycles, 0u);
    EXPECT_EQ(r.degrade_events, 0u);
    EXPECT_EQ(r.degraded_se_cycles, 0u);
    EXPECT_GT(r.ecc_retries + r.uncorrected_errors, 0u);
    EXPECT_GT(r.injected_events, 0u);
}

} // namespace
} // namespace bluescale::harness
