// Acceptance gate for the analysis-service storm experiment: under
// overload, worker crash/stall faults and fabric path hazards, no
// request deadlocks or disappears -- every submission lands in exactly
// one of {committed, rejected(reason), expired, shed}, the obs-snapshot
// counts conserve, hard clients never miss, and the whole sweep is
// byte-identical for any --threads setting and for the event vs
// lockstep engines.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/analysis_service_experiment.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"

namespace bluescale::harness {
namespace {

class scoped_engine {
public:
    explicit scoped_engine(simulator::engine e) {
        simulator::set_default_engine(e);
    }
    ~scoped_engine() { simulator::clear_default_engine(); }
    scoped_engine(const scoped_engine&) = delete;
    scoped_engine& operator=(const scoped_engine&) = delete;
};

svc_storm_config small_storm(unsigned threads) {
    svc_storm_config cfg;
    cfg.trials = 2;
    cfg.measure_cycles = 12'000;
    cfg.seed = 11;
    cfg.threads = threads;
    cfg.requests_per_kcycle = 4.0; // past the queue bound: shedding fires
    cfg.service.default_deadline = 8'000;
    cfg.worker_fault_intensity = 0.2;
    cfg.path_fault_intensity = 0.05;
    return cfg;
}

void expect_results_equal(const svc_storm_result& a,
                          const svc_storm_result& b) {
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.expired, b.expired);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.requeues, b.requeues);
    EXPECT_EQ(a.worker_crashes, b.worker_crashes);
    EXPECT_EQ(a.worker_stall_cycles, b.worker_stall_cycles);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.cache_misses, b.cache_misses);
    EXPECT_EQ(a.breaker_trips, b.breaker_trips);
    EXPECT_EQ(a.hard_misses, b.hard_misses);
    EXPECT_EQ(a.conserved_trials, b.conserved_trials);
    // Bit-exact sample aggregates, not just counts: a one-cycle timing
    // slip between engines shows up here.
    EXPECT_EQ(a.latency_cycles.mean(), b.latency_cycles.mean());
    EXPECT_EQ(a.latency_cycles.max(), b.latency_cycles.max());
    EXPECT_EQ(a.eval_cycles.mean(), b.eval_cycles.mean());
}

TEST(svc_storm, conserves_requests_and_protects_hard_clients) {
    // Overload + worker faults only: a fabric-side fault campaign could
    // legitimately stall a hard client's subtree, which is the supply
    // watchdog's problem, not the service's. The service-level storm
    // must never touch the fabric's hard guarantees.
    auto cfg = small_storm(1);
    cfg.path_fault_intensity = 0.0;
    const auto r = run_svc_storm(cfg);
    EXPECT_EQ(r.feasible_trials, r.trials);
    EXPECT_EQ(r.drained_trials, r.trials);
    EXPECT_EQ(r.conserved_trials, r.trials);
    EXPECT_GT(r.submitted, 0u);
    // Exactly one terminal outcome per request, summed over all trials.
    EXPECT_EQ(r.submitted, r.shed + r.expired + r.committed + r.rejected);
    // The storm actually overloads: the bounded queue shed work, and the
    // robustness machinery saw real faults.
    EXPECT_GT(r.shed, 0u);
    EXPECT_GT(r.worker_crashes + r.worker_stall_cycles, 0u);
    // Hard real-time clients ride through the whole storm untouched.
    EXPECT_EQ(r.hard_misses, 0u);
}

TEST(svc_storm, obs_totals_match_the_aggregates) {
    auto cfg = small_storm(1);
    const auto r = run_svc_storm(cfg);
    const auto cells = obs::metric_cells(
        r.totals, {"svc_exp/submitted", "svc_exp/shed", "svc_exp/expired",
                   "svc_exp/committed", "svc_exp/rejected",
                   "svc_exp/conserved_trials"});
    ASSERT_EQ(cells.size(), 6u);
    EXPECT_EQ(cells[0], std::to_string(r.submitted));
    EXPECT_EQ(cells[1], std::to_string(r.shed));
    EXPECT_EQ(cells[2], std::to_string(r.expired));
    EXPECT_EQ(cells[3], std::to_string(r.committed));
    EXPECT_EQ(cells[4], std::to_string(r.rejected));
    EXPECT_EQ(cells[5], std::to_string(r.conserved_trials));
}

TEST(svc_storm, thread_count_does_not_change_results) {
    const auto one = run_svc_storm(small_storm(1));
    const auto four = run_svc_storm(small_storm(4));
    expect_results_equal(one, four);
}

TEST(svc_storm, event_and_lockstep_engines_agree) {
    svc_storm_result event_r;
    {
        scoped_engine guard(simulator::engine::event);
        event_r = run_svc_storm(small_storm(2));
    }
    svc_storm_result lockstep_r;
    {
        scoped_engine guard(simulator::engine::lockstep);
        lockstep_r = run_svc_storm(small_storm(2));
    }
    expect_results_equal(event_r, lockstep_r);
}

} // namespace
} // namespace bluescale::harness
