#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/testbench.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::harness {
namespace {

struct rig {
    std::vector<workload::memory_task_set> tasksets;
    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    std::unique_ptr<testbench> tb;
};

rig make_rig(ic_kind kind, std::uint32_t n_clients, std::uint64_t seed,
             bool with_selection = false) {
    rig r;
    rng rnd(seed);
    r.tasksets =
        workload::make_client_tasksets(rnd, n_clients, 0.6, 0.6);

    testbench_options opts;
    opts.n_clients = n_clients;
    for (const auto& ts : r.tasksets) {
        opts.client_utilizations.push_back(workload::utilization(ts));
    }
    std::vector<analysis::task_set> rt_sets;
    if (with_selection) {
        for (const auto& ts : r.tasksets) {
            rt_sets.push_back(workload::to_rt_tasks(ts));
        }
        opts.rt_sets = &rt_sets; // consumed by the constructor below
    }
    r.tb = std::make_unique<testbench>(kind, opts);

    workload::traffic_gen_config tg_cfg;
    tg_cfg.unit_cycles = r.tb->unit_cycles();
    for (std::uint32_t c = 0; c < n_clients; ++c) {
        r.clients.push_back(std::make_unique<workload::traffic_generator>(
            c, r.tasksets[c], r.tb->ic(), seed + c, tg_cfg));
        auto* client = r.clients.back().get();
        r.tb->add_client(c, *client, [client](mem_request&& req) {
            client->on_response(std::move(req));
        });
    }
    return r;
}

TEST(testbench, assembles_and_runs_every_design) {
    for (ic_kind kind : k_extended_kinds) {
        auto r = make_rig(kind, 16, 11, kind == ic_kind::bluescale);
        r.tb->run(10'000);
        EXPECT_EQ(r.tb->now(), 10'000u) << kind_name(kind);
        std::uint64_t completed = 0;
        for (auto& c : r.clients) {
            c->finalize(r.tb->now());
            completed += c->stats().completed();
        }
        EXPECT_GT(completed, 0u) << kind_name(kind);
    }
}

TEST(testbench, routes_responses_to_the_registered_client) {
    auto r = make_rig(ic_kind::bluetree, 16, 23);
    r.tb->run(10'000);
    // Every client that issued requests must have gotten responses back:
    // completions are recorded by the per-client sink, so cross-routing
    // would leave some client permanently throttled at max_outstanding.
    for (auto& c : r.clients) {
        c->finalize(r.tb->now());
        EXPECT_GT(c->stats().completed(), 0u) << "client " << c->id();
    }
}

TEST(testbench, resolves_selection_for_bluescale) {
    auto r = make_rig(ic_kind::bluescale, 16, 31, true);
    EXPECT_TRUE(r.tb->selection_feasible());
    EXPECT_GT(r.tb->selection().root_bandwidth, 0.0);
}

TEST(testbench, no_selection_without_rt_sets) {
    auto r = make_rig(ic_kind::bluescale, 16, 31, false);
    EXPECT_FALSE(r.tb->selection_feasible());
    r.tb->run(5'000); // unconfigured fabric still runs (pure nested EDF)
    EXPECT_EQ(r.tb->now(), 5'000u);
}

TEST(testbench, se_override_builds_bluescale_variant) {
    rng rnd(5);
    auto tasksets = workload::make_client_tasksets(rnd, 16, 0.5, 0.5);
    testbench_options opts;
    opts.n_clients = 16;
    core::se_params se;
    se.buffer_depth = 4;
    opts.bluescale_se = se;
    for (const auto& ts : tasksets) {
        opts.client_utilizations.push_back(workload::utilization(ts));
    }
    testbench tb(ic_kind::bluescale, opts);

    workload::traffic_gen_config tg_cfg;
    tg_cfg.unit_cycles = tb.unit_cycles();
    workload::traffic_generator client(0, tasksets[0], tb.ic(), 77, tg_cfg);
    tb.add_client(0, client, [&client](mem_request&& req) {
        client.on_response(std::move(req));
    });
    tb.run(5'000);
    client.finalize(tb.now());
    EXPECT_GT(client.stats().completed(), 0u);
}

TEST(testbench, run_accumulates_cycles) {
    auto r = make_rig(ic_kind::gsmtree_tdm, 16, 41);
    r.tb->run(1'000);
    r.tb->run(2'000);
    EXPECT_EQ(r.tb->now(), 3'000u);
}

} // namespace
} // namespace bluescale::harness
