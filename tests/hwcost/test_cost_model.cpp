#include <gtest/gtest.h>

#include "hwcost/calibration.hpp"
#include "hwcost/cost_model.hpp"

namespace bluescale::hwcost {
namespace {

namespace cal = calibration;

TEST(cost_model, se_count_matches_paper_topologies) {
    EXPECT_EQ(bluescale_se_count(16), 5u);  // Fig. 2(a)
    EXPECT_EQ(bluescale_se_count(64), 21u); // Fig. 2(d)
    EXPECT_EQ(bluescale_se_count(4), 1u);
    EXPECT_EQ(bluescale_se_count(1), 1u);
    // Non-padded chain: 128 -> 32 + 8 + 2 + 1.
    EXPECT_EQ(bluescale_se_count(128), 43u);
}

TEST(cost_model, bluetree_node_count) {
    EXPECT_EQ(bluetree_node_count(16), 15u);
    EXPECT_EQ(bluetree_node_count(2), 1u);
    EXPECT_EQ(bluetree_node_count(64), 63u);
}

TEST(cost_model, table1_anchors_reproduced_exactly) {
    // The calibration contract: 16-client estimates equal Table 1.
    const struct {
        design d;
        resource_estimate expected;
    } rows[] = {
        {design::axi_icrt, cal::k_axi_icrt_16},
        {design::bluetree, cal::k_bluetree_16},
        {design::bluetree_smooth, cal::k_bluetree_smooth_16},
        {design::gsmtree, cal::k_gsmtree_16},
        {design::bluescale, cal::k_bluescale_16},
        {design::microblaze, cal::k_microblaze},
        {design::riscv, cal::k_riscv},
    };
    for (const auto& row : rows) {
        const auto e = estimate(row.d, 16);
        EXPECT_NEAR(e.luts, row.expected.luts, 0.5) << design_name(row.d);
        EXPECT_NEAR(e.registers, row.expected.registers, 0.5)
            << design_name(row.d);
        EXPECT_NEAR(e.dsps, row.expected.dsps, 0.01) << design_name(row.d);
        EXPECT_NEAR(e.ram_kb, row.expected.ram_kb, 0.01)
            << design_name(row.d);
        EXPECT_NEAR(e.power_mw, row.expected.power_mw, 0.5)
            << design_name(row.d);
    }
}

TEST(cost_model, table1_relative_ordering) {
    // Obs 1: BlueScale uses more than the distributed trees, less than
    // the centralized interconnect and far less than processors.
    const auto bs = estimate(design::bluescale, 16);
    EXPECT_GT(bs.luts, estimate(design::bluetree, 16).luts);
    EXPECT_GT(bs.luts, estimate(design::bluetree_smooth, 16).luts);
    EXPECT_LT(bs.luts, estimate(design::axi_icrt, 16).luts);
    EXPECT_LT(bs.luts, estimate(design::microblaze, 16).luts);
    EXPECT_LT(bs.luts, estimate(design::riscv, 16).luts);
    EXPECT_EQ(bs.dsps, 0);
}

TEST(cost_model, distributed_designs_scale_linearly) {
    // Doubling SE count doubles cost (element-proportional scaling).
    const auto at16 = estimate(design::bluescale, 16);
    const auto at64 = estimate(design::bluescale, 64);
    EXPECT_NEAR(at64.luts / at16.luts, 21.0 / 5.0, 1e-9);
}

TEST(cost_model, centralized_scales_superlinearly) {
    const auto at16 = estimate(design::axi_icrt, 16);
    const auto at64 = estimate(design::axi_icrt, 64);
    EXPECT_GT(at64.luts / at16.luts, 4.0); // worse than linear in clients
}

TEST(cost_model, bluescale_cheaper_than_axi_at_scale) {
    // Obs 2: BlueScale always requires less area than AXI-IC^RT.
    for (std::uint32_t eta = 1; eta <= 7; ++eta) {
        const std::uint32_t n = 1u << eta;
        EXPECT_LT(area_fraction(design::bluescale, n),
                  area_fraction(design::axi_icrt, n))
            << "eta=" << eta;
    }
}

TEST(cost_model, bluescale_extra_area_bounded_small_margin) {
    // Obs 2: the area BlueScale adds stays within a small margin of the
    // platform (the paper quotes < 5%; the anchored model lands at 5.2%
    // for the extreme eta = 7 point, so the bound here is 5.5%).
    for (std::uint32_t eta = 1; eta <= 7; ++eta) {
        const std::uint32_t n = 1u << eta;
        EXPECT_LT(area_fraction(design::bluescale, n), 0.055)
            << "eta=" << eta;
    }
}

TEST(cost_model, area_and_power_monotone_in_scale) {
    double prev_area = 0, prev_power = 0;
    for (std::uint32_t eta = 1; eta <= 7; ++eta) {
        const std::uint32_t n = 1u << eta;
        const double a =
            legacy_area_fraction(n) + area_fraction(design::bluescale, n);
        const double p = legacy_power_w(n) + power_w(design::bluescale, n);
        EXPECT_GT(a, prev_area);
        EXPECT_GT(p, prev_power);
        prev_area = a;
        prev_power = p;
    }
}

TEST(cost_model, fmax_crossover_obs3) {
    // Obs 3: past 32 clients (eta > 5) AXI-IC^RT's fmax falls below the
    // legacy system; BlueScale never does.
    for (std::uint32_t eta = 1; eta <= 5; ++eta) {
        const std::uint32_t n = 1u << eta;
        EXPECT_GE(fmax_mhz(design::axi_icrt, n), legacy_fmax_mhz(n))
            << "eta=" << eta;
    }
    for (std::uint32_t eta = 6; eta <= 7; ++eta) {
        const std::uint32_t n = 1u << eta;
        EXPECT_LT(fmax_mhz(design::axi_icrt, n), legacy_fmax_mhz(n))
            << "eta=" << eta;
        EXPECT_GT(fmax_mhz(design::bluescale, n), legacy_fmax_mhz(n))
            << "eta=" << eta;
    }
}

TEST(cost_model, system_clock_is_min_of_legacy_and_design) {
    const std::uint32_t n = 128;
    EXPECT_DOUBLE_EQ(system_clock_mhz(design::bluescale, n),
                     legacy_fmax_mhz(n));
    EXPECT_DOUBLE_EQ(system_clock_mhz(design::axi_icrt, n),
                     fmax_mhz(design::axi_icrt, n));
}

TEST(cost_model, design_names) {
    EXPECT_STREQ(design_name(design::bluescale), "BlueScale");
    EXPECT_STREQ(design_name(design::axi_icrt), "AXI-IC^RT");
    EXPECT_STREQ(design_name(design::gsmtree), "GSMTree");
}

TEST(cost_model, power_positive_for_all_designs_and_scales) {
    for (const design d :
         {design::axi_icrt, design::bluetree, design::bluetree_smooth,
          design::gsmtree, design::bluescale}) {
        for (std::uint32_t eta = 1; eta <= 7; ++eta) {
            EXPECT_GT(power_w(d, 1u << eta), 0.0) << design_name(d);
        }
    }
}

} // namespace
} // namespace bluescale::hwcost
