// Full-system integration: clients -> interconnect -> memory -> responses,
// for every evaluated design.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/factory.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale {
namespace {

using harness::ic_build_options;
using harness::ic_kind;
using harness::k_all_kinds;
using harness::kind_name;
using harness::make_interconnect;

struct system_rig {
    system_rig(ic_kind kind, std::uint32_t n_clients, double total_util,
               std::uint64_t seed = 5) {
        rng r(seed);
        tasksets = workload::make_client_tasksets(r, n_clients, total_util,
                                                  total_util);
        ic_build_options opts;
        opts.n_clients = n_clients;
        for (const auto& ts : tasksets) {
            opts.client_utilizations.push_back(workload::utilization(ts));
        }
        if (kind == ic_kind::bluescale) {
            std::vector<analysis::task_set> rt;
            for (const auto& ts : tasksets) {
                rt.push_back(workload::to_rt_tasks(ts));
            }
            selection = analysis::select_tree_interfaces(rt);
            opts.selection = &selection;
        }
        net = make_interconnect(kind, opts);
        net->attach_memory(mem);
        for (std::uint32_t c = 0; c < n_clients; ++c) {
            clients.push_back(std::make_unique<workload::traffic_generator>(
                c, tasksets[c], *net, seed * 1000 + c));
        }
        net->set_response_handler([this](mem_request&& resp) {
            clients[resp.client]->on_response(std::move(resp));
        });
        for (auto& c : clients) sim.add(*c);
        sim.add(*net);
        sim.add(mem);
    }

    std::uint64_t total_issued() const {
        std::uint64_t n = 0;
        for (const auto& c : clients) n += c->stats().issued();
        return n;
    }
    std::uint64_t total_completed() const {
        std::uint64_t n = 0;
        for (const auto& c : clients) n += c->stats().completed();
        return n;
    }
    std::uint64_t total_missed() const {
        std::uint64_t n = 0;
        for (const auto& c : clients) n += c->stats().missed();
        return n;
    }

    std::vector<workload::memory_task_set> tasksets;
    analysis::tree_selection selection;
    std::unique_ptr<interconnect> net;
    memory_controller mem;
    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    simulator sim;
};

class end_to_end : public ::testing::TestWithParam<ic_kind> {};

TEST_P(end_to_end, conservation_no_request_lost_or_duplicated) {
    system_rig rig(GetParam(), 16, 0.6);
    rig.sim.run(30'000);
    // Drain: stop new traffic; responses for everything issued must
    // eventually arrive.
    for (auto& c : rig.clients) c->stop();
    rig.sim.run_until([&] { return rig.net->in_flight() == 0; }, 200'000);
    EXPECT_EQ(rig.net->in_flight(), 0u) << kind_name(GetParam());
    EXPECT_EQ(rig.total_completed(), rig.total_issued())
        << kind_name(GetParam());
}

TEST_P(end_to_end, light_load_meets_all_deadlines) {
    system_rig rig(GetParam(), 16, 0.15);
    rig.sim.run(40'000);
    for (auto& c : rig.clients) c->finalize(rig.sim.now());
    EXPECT_EQ(rig.total_missed(), 0u) << kind_name(GetParam());
    EXPECT_GT(rig.total_completed(), 300u) << kind_name(GetParam());
}

TEST_P(end_to_end, sixty_four_clients_functional) {
    system_rig rig(GetParam(), 64, 0.5);
    rig.sim.run(20'000);
    for (auto& c : rig.clients) c->stop();
    rig.sim.run_until([&] { return rig.net->in_flight() == 0; }, 200'000);
    EXPECT_EQ(rig.total_completed(), rig.total_issued())
        << kind_name(GetParam());
    EXPECT_GT(rig.total_completed(), 1000u) << kind_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(designs, end_to_end,
                         ::testing::ValuesIn(k_all_kinds),
                         [](const auto& pinfo) {
                             switch (pinfo.param) {
                             case ic_kind::axi_icrt: return "axi_icrt";
                             case ic_kind::bluetree: return "bluetree";
                             case ic_kind::bluetree_smooth:
                                 return "bluetree_smooth";
                             case ic_kind::gsmtree_tdm: return "gsmtree_tdm";
                             case ic_kind::gsmtree_fbsp:
                                 return "gsmtree_fbsp";
                             case ic_kind::bluescale: return "bluescale";
                             case ic_kind::axi_hyperconnect:
                                 return "axi_hyperconnect";
                             }
                             return "unknown";
                         });

TEST(end_to_end_bluescale, configured_fabric_meets_deadlines_at_80pct) {
    // The headline property: with the interface selection programmed,
    // BlueScale sustains 80% utilization without deadline misses.
    system_rig rig(ic_kind::bluescale, 16, 0.8, /*seed=*/42);
    ASSERT_TRUE(rig.selection.feasible) << rig.selection.failure.to_string();
    rig.sim.run(100'000);
    for (auto& c : rig.clients) c->finalize(rig.sim.now());
    EXPECT_EQ(rig.total_missed(), 0u);
    EXPECT_GT(rig.total_completed(), 15'000u);
}

TEST(end_to_end_bluescale, throughput_matches_demand_at_80pct) {
    system_rig rig(ic_kind::bluescale, 16, 0.8, /*seed=*/42);
    rig.sim.run(100'000);
    // Demand is 0.8 units/unit = 0.2 requests/cycle.
    const double rate =
        static_cast<double>(rig.mem.serviced()) / 100'000.0;
    EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(end_to_end_bluescale, blocking_bounded_under_contention) {
    system_rig rig(ic_kind::bluescale, 16, 0.85, /*seed=*/11);
    rig.sim.run(50'000);
    double worst = 0;
    for (auto& c : rig.clients) {
        worst = std::max(worst, c->stats().blocking_cycles().max());
    }
    // Compositional scheduling bounds inversion; a loose sanity ceiling.
    EXPECT_LT(worst, 2'000.0);
}

} // namespace
} // namespace bluescale
