// The acceptance gate for the event-driven engine: the hybrid
// skip-to-next-event scheduler and the BLUESCALE_LOCKSTEP cycle-stepped
// fallback must produce byte-identical exports -- same metrics snapshot,
// same event trace, same aggregates -- for every experiment, at any
// --threads setting. A horizon that sleeps through real work or a wake
// that fires a cycle late shows up here as a diff, not as a silent
// result shift.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/factory.hpp"
#include "harness/fig6_experiment.hpp"
#include "harness/reconfig_experiment.hpp"
#include "harness/resilience_experiment.hpp"
#include "sim/simulator.hpp"

namespace bluescale::harness {
namespace {

/// Pins the process-wide default engine for one run and always restores
/// the environment-derived default afterwards, so test order cannot leak
/// an override into unrelated suites.
class scoped_engine {
public:
    explicit scoped_engine(simulator::engine e) {
        simulator::set_default_engine(e);
    }
    ~scoped_engine() { simulator::clear_default_engine(); }
    scoped_engine(const scoped_engine&) = delete;
    scoped_engine& operator=(const scoped_engine&) = delete;
};

std::string metrics_csv(const obs::snapshot& snap) {
    std::ostringstream os;
    snap.write_csv(os);
    return os.str();
}

std::string trace_json(const obs::trace_export& trace) {
    std::ostringstream os;
    trace.write_chrome_json(os);
    return os.str();
}

fig6_config fig6_cfg(unsigned threads) {
    fig6_config cfg;
    cfg.n_clients = 16;
    cfg.trials = 4;
    cfg.measure_cycles = 8'000;
    cfg.seed = 7;
    cfg.threads = threads;
    cfg.collect_metrics = true;
    cfg.collect_trace = true;
    return cfg;
}

template <typename Result>
void expect_equal_exports(const Result& event, const Result& lockstep) {
    ASSERT_FALSE(event.metrics.empty());
    EXPECT_EQ(metrics_csv(event.metrics), metrics_csv(lockstep.metrics));
    EXPECT_EQ(trace_json(event.trace), trace_json(lockstep.trace));
}

TEST(engine_equivalence, fig6_all_designs_bit_identical) {
    for (const ic_kind kind : k_all_kinds) {
        fig6_result event_r, lockstep_r;
        {
            scoped_engine guard(simulator::engine::event);
            event_r = run_fig6(kind, fig6_cfg(1));
        }
        {
            scoped_engine guard(simulator::engine::lockstep);
            lockstep_r = run_fig6(kind, fig6_cfg(1));
        }
        SCOPED_TRACE(kind_name(kind));
        expect_equal_exports(event_r, lockstep_r);
        EXPECT_EQ(event_r.blocking_us.mean(), lockstep_r.blocking_us.mean());
        EXPECT_EQ(event_r.miss_ratio.mean(), lockstep_r.miss_ratio.mean());
    }
}

TEST(engine_equivalence, fig6_event_engine_thread_invariant) {
    // The event engine must keep the determinism contract lockstep
    // already honours: per-trial simulations are independent, so the
    // sweep's thread count cannot change a byte of the export.
    fig6_result serial, parallel;
    {
        scoped_engine guard(simulator::engine::event);
        serial = run_fig6(ic_kind::bluescale, fig6_cfg(1));
        parallel = run_fig6(ic_kind::bluescale, fig6_cfg(4));
    }
    expect_equal_exports(serial, parallel);
}

TEST(engine_equivalence, resilience_faulty_run_bit_identical) {
    // Fault campaigns exercise the wake paths idle skipping must never
    // sleep through: injected storms, link drops, retry timeouts, ECC
    // reissues.
    resilience_config cfg;
    cfg.n_clients = 16;
    cfg.trials = 3;
    cfg.measure_cycles = 8'000;
    cfg.seed = 11;
    cfg.fault_intensity = 1.0;
    cfg.threads = 4;
    cfg.collect_metrics = true;
    cfg.collect_trace = true;

    resilience_result event_r, lockstep_r;
    {
        scoped_engine guard(simulator::engine::event);
        event_r = run_resilience(ic_kind::bluescale, cfg);
    }
    {
        scoped_engine guard(simulator::engine::lockstep);
        lockstep_r = run_resilience(ic_kind::bluescale, cfg);
    }
    expect_equal_exports(event_r, lockstep_r);
    EXPECT_EQ(metrics_csv(event_r.totals), metrics_csv(lockstep_r.totals));
}

TEST(engine_equivalence, reconfig_run_bit_identical) {
    // Mid-run reconfigurations rewrite task sets and SE schedules while
    // components sleep; the admission/watchdog supervisors are the
    // components with the longest horizons, so this is the sternest test
    // of the wake protocol.
    reconfig_exp_config cfg;
    cfg.n_clients = 16;
    cfg.trials = 3;
    cfg.measure_cycles = 8'000;
    cfg.seed = 13;
    cfg.events_per_kcycle = 2.0;
    cfg.reconfig_warmup = 1'000;
    cfg.threads = 4;
    cfg.collect_metrics = true;
    cfg.collect_trace = true;

    reconfig_result event_r, lockstep_r;
    {
        scoped_engine guard(simulator::engine::event);
        event_r = run_reconfig(ic_kind::bluescale, cfg);
    }
    {
        scoped_engine guard(simulator::engine::lockstep);
        lockstep_r = run_reconfig(ic_kind::bluescale, cfg);
    }
    expect_equal_exports(event_r, lockstep_r);
    EXPECT_EQ(metrics_csv(event_r.totals), metrics_csv(lockstep_r.totals));
}

} // namespace
} // namespace bluescale::harness
