// The acceptance gate for the observability layer: the --metrics and
// --trace exports of the fig6 and resilience experiments are
// byte-identical for any --threads setting. Serializes through the same
// obs writers the bench_cli --metrics/--trace flags use.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/factory.hpp"
#include "harness/fig6_experiment.hpp"
#include "harness/resilience_experiment.hpp"

namespace bluescale::harness {
namespace {

std::string metrics_csv(const obs::snapshot& snap) {
    std::ostringstream os;
    snap.write_csv(os);
    return os.str();
}

std::string trace_csv(const obs::trace_export& trace) {
    std::ostringstream os;
    trace.write_csv(os);
    return os.str();
}

std::string trace_json(const obs::trace_export& trace) {
    std::ostringstream os;
    trace.write_chrome_json(os);
    return os.str();
}

fig6_config fig6_export_config(unsigned threads) {
    fig6_config cfg;
    cfg.n_clients = 16;
    cfg.trials = 4;
    cfg.measure_cycles = 8'000;
    cfg.seed = 7;
    cfg.threads = threads;
    cfg.collect_metrics = true;
    cfg.collect_trace = true;
    return cfg;
}

TEST(export_determinism, fig6_exports_bit_identical_across_threads) {
    const auto serial = run_fig6(ic_kind::bluescale, fig6_export_config(1));
    const auto parallel = run_fig6(ic_kind::bluescale, fig6_export_config(4));

    ASSERT_FALSE(serial.metrics.empty());
    EXPECT_EQ(metrics_csv(serial.metrics), metrics_csv(parallel.metrics));
    EXPECT_EQ(trace_csv(serial.trace), trace_csv(parallel.trace));
    EXPECT_EQ(trace_json(serial.trace), trace_json(parallel.trace));
}

TEST(export_determinism, fig6_profile_never_leaks_into_metrics) {
    auto cfg = fig6_export_config(2);
    cfg.trials = 2;
    cfg.profile = true;
    const auto r = run_fig6(ic_kind::bluescale, cfg);
    for (const auto& [name, value] : r.metrics.entries()) {
        EXPECT_EQ(value.flags & obs::k_metric_profile, 0u) << name;
        EXPECT_NE(name.rfind("profile/", 0), 0u) << name;
    }
    // And the deterministic export is unchanged by profiling being on.
    auto plain = fig6_export_config(2);
    plain.trials = 2;
    const auto base = run_fig6(ic_kind::bluescale, plain);
    EXPECT_EQ(metrics_csv(base.metrics), metrics_csv(r.metrics));
}

resilience_config resilience_export_config(unsigned threads) {
    resilience_config cfg;
    cfg.n_clients = 16;
    cfg.trials = 3;
    cfg.measure_cycles = 8'000;
    cfg.seed = 11;
    cfg.fault_intensity = 1.0;
    cfg.threads = threads;
    cfg.collect_metrics = true;
    cfg.collect_trace = true;
    return cfg;
}

TEST(export_determinism, resilience_exports_bit_identical_across_threads) {
    const auto serial =
        run_resilience(ic_kind::bluescale, resilience_export_config(1));
    const auto parallel =
        run_resilience(ic_kind::bluescale, resilience_export_config(4));

    ASSERT_FALSE(serial.metrics.empty());
    EXPECT_EQ(metrics_csv(serial.metrics), metrics_csv(parallel.metrics));
    EXPECT_EQ(metrics_csv(serial.totals), metrics_csv(parallel.totals));
    EXPECT_EQ(trace_csv(serial.trace), trace_csv(parallel.trace));
}

#if BLUESCALE_TRACE_ENABLED
TEST(export_determinism, fig6_trace_carries_fabric_events) {
    const auto r = run_fig6(ic_kind::bluescale, fig6_export_config(2));
    ASSERT_FALSE(r.trace.events.empty());
    bool saw_grant = false;
    for (const auto& e : r.trace.events) {
        if (e.kind == obs::trace_event_kind::request_grant) saw_grant = true;
    }
    EXPECT_TRUE(saw_grant);
}
#endif

} // namespace
} // namespace bluescale::harness
