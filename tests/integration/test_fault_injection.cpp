// Failure injection: transient SE stalls scripted through a
// sim::fault_campaign must degrade performance gracefully: no lost or
// duplicated transactions, bounded extra latency, faults contained to the
// targeted subtree, and a healthy system unaffected by a zero-fault
// configuration.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/bluescale_ic.hpp"
#include "mem/memory_controller.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::core {
namespace {

struct run_result {
    std::uint64_t completed = 0;
    std::uint64_t issued = 0;
    std::uint64_t missed = 0;
    double mean_latency = 0.0;
    std::uint64_t fault_cycles = 0;
};

/// Periodic stall windows of `duration` cycles every `period` cycles on
/// every SE of the 16-client tree (5 elements: root + 4 leaves) -- the
/// scripted-campaign equivalent of the old se_params periodic fault knob.
sim::fault_campaign periodic_stalls(cycle_t period, cycle_t duration,
                                    cycle_t horizon) {
    std::vector<sim::fault_event> events;
    for (std::uint32_t se = 0; se < 5; ++se) {
        for (cycle_t start = 0; start < horizon; start += period) {
            events.push_back(
                {sim::fault_kind::se_stall, se, start, duration});
        }
    }
    return sim::fault_campaign(std::move(events));
}

run_result run(const sim::fault_campaign& campaign, double util,
               cycle_t cycles, bool drain = true) {
    constexpr std::uint32_t n = 16;
    rng r(31337);
    auto tasksets = workload::make_client_tasksets(r, n, util, util);
    bluescale_ic fabric(n);
    memory_controller mem;
    fabric.attach_memory(mem);
    fabric.inject_campaign(campaign);
    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < n; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], fabric, 10 + c));
    }
    fabric.set_response_handler([&](mem_request&& req) {
        clients[req.client]->on_response(std::move(req));
    });
    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(fabric);
    sim.add(mem);
    sim.run(cycles);
    if (drain) {
        for (auto& c : clients) c->stop();
        sim.run_until([&] { return fabric.in_flight() == 0; }, 200'000);
    }

    run_result out;
    stats::running_summary latency;
    for (auto& c : clients) {
        c->finalize(sim.now());
        out.completed += c->stats().completed();
        out.issued += c->stats().issued();
        out.missed += c->stats().missed();
        for (double v : c->stats().latency_cycles().samples()) {
            latency.add(v);
        }
    }
    out.mean_latency = latency.mean();
    const auto& shape = fabric.shape();
    for (std::uint32_t l = 0; l <= shape.leaf_level; ++l) {
        for (std::uint32_t y = 0; y < shape.ses_at_level(l); ++y) {
            out.fault_cycles += fabric.se_at(l, y).fault_stall_cycles();
        }
    }
    return out;
}

TEST(fault_injection, conservation_holds_under_faults) {
    // 10% downtime on every SE over the measurement window.
    const auto campaign = periodic_stalls(500, 50, 20'000);
    const auto r = run(campaign, 0.5, 20'000);
    EXPECT_EQ(r.completed, r.issued);
    EXPECT_GT(r.fault_cycles, 0u);
}

TEST(fault_injection, zero_fault_config_records_no_stalls) {
    const auto r = run(sim::fault_campaign{}, 0.5, 10'000);
    EXPECT_EQ(r.fault_cycles, 0u);
}

TEST(fault_injection, latency_degrades_with_fault_duty) {
    const auto healthy = run(sim::fault_campaign{}, 0.6, 20'000);
    // 20% downtime.
    const auto campaign = periodic_stalls(200, 40, 20'000);
    const auto injured = run(campaign, 0.6, 20'000);
    EXPECT_GT(injured.mean_latency, healthy.mean_latency);
}

TEST(fault_injection, heavy_faults_cause_misses_light_ones_do_not) {
    // 1% downtime: mostly absorbed by headroom.
    const auto light = periodic_stalls(2000, 20, 30'000);
    const auto ok = run(light, 0.4, 30'000);
    // Faults consume supply the analysis assumed, so an occasional
    // tight-deadline request may slip -- but not more than ~0.1%.
    EXPECT_LE(ok.missed, ok.completed / 1000);

    // 60% downtime: capacity below demand.
    const auto heavy = periodic_stalls(100, 60, 30'000);
    const auto bad = run(heavy, 0.6, 30'000, /*drain=*/false);
    EXPECT_GT(bad.missed, 0u);
}

// A campaign stalling ONE leaf SE must not consume the supply guaranteed
// to clients behind the other leaves: faults are contained to the faulted
// element's subtree. Clients 0-3 sit behind SE(1, 0) (campaign linear
// index 1); clients 4-15 must finish every request on time.
TEST(fault_injection, campaign_faults_are_isolated_to_targeted_subtree) {
    constexpr std::uint32_t n = 16;
    constexpr cycle_t run_cycles = 30'000;
    rng r(4242);
    auto tasksets = workload::make_client_tasksets(r, n, 0.3, 0.3);
    bluescale_ic fabric(n);
    memory_controller mem;
    fabric.attach_memory(mem);

    // Bounded campaign: 20% stall duty on the targeted leaf SE, quiet
    // everywhere else, over the measurement window only.
    std::vector<sim::fault_event> events;
    for (cycle_t start = 0; start + 1000 <= run_cycles; start += 1000) {
        events.push_back(
            {sim::fault_kind::se_stall, /*target=*/1, start, 200});
    }
    const sim::fault_campaign campaign(std::move(events));
    fabric.inject_campaign(campaign);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < n; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], fabric, 10 + c));
    }
    fabric.set_response_handler([&](mem_request&& req) {
        clients[req.client]->on_response(std::move(req));
    });
    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(fabric);
    sim.add(mem);
    sim.run(run_cycles);
    for (auto& c : clients) c->stop();
    sim.run_until([&] { return fabric.in_flight() == 0; }, 200'000);

    // The campaign actually bit the targeted element...
    EXPECT_GT(fabric.se_at(1, 0).fault_stall_cycles(), 0u);
    EXPECT_GT(fabric.se_at(1, 0).stall_windows_entered(), 0u);
    // ...and nothing else.
    EXPECT_EQ(fabric.se_at(0, 0).fault_stall_cycles(), 0u);
    for (std::uint32_t y = 1; y < 4; ++y) {
        EXPECT_EQ(fabric.se_at(1, y).fault_stall_cycles(), 0u) << y;
    }

    for (std::uint32_t c = 0; c < n; ++c) {
        clients[c]->finalize(sim.now());
        const auto& s = clients[c]->stats();
        EXPECT_EQ(s.completed(), s.issued()) << "client " << c;
        if (c >= 4) {
            // Healthy subtrees keep their guaranteed supply: no misses.
            EXPECT_EQ(s.missed(), 0u) << "client " << c;
        }
    }
}

TEST(fault_injection, fault_cycles_match_duty_cycle) {
    const auto campaign = periodic_stalls(100, 25, 20'000);
    const auto r = run(campaign, 0.3, 20'000, /*drain=*/false);
    // 5 SEs x 20000 cycles x 25% duty.
    EXPECT_NEAR(static_cast<double>(r.fault_cycles), 5 * 20'000 * 0.25,
                5 * 20'000 * 0.01);
}

} // namespace
} // namespace bluescale::core
