// Maintenance determinism gate: every maintenance export -- refresh /
// scrub / mitigation counters, stolen-cycle totals, the merged metrics
// snapshot and the event trace -- must be byte-identical between the
// event-driven engine and the BLUESCALE_LOCKSTEP cycle-stepped fallback,
// at any --threads setting. Maintenance work is exactly the kind of
// background activity an idle-skipping scheduler could sleep through: a
// refresh boundary that fires a cycle late in one engine shows up here
// as a diff, not as a silently shifted result.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/maintenance_experiment.hpp"
#include "sim/simulator.hpp"

namespace bluescale::harness {
namespace {

/// Pins the process-wide default engine for one run and always restores
/// the environment-derived default afterwards, so test order cannot leak
/// an override into unrelated suites.
class scoped_engine {
public:
    explicit scoped_engine(simulator::engine e) {
        simulator::set_default_engine(e);
    }
    ~scoped_engine() { simulator::clear_default_engine(); }
    scoped_engine(const scoped_engine&) = delete;
    scoped_engine& operator=(const scoped_engine&) = delete;
};

std::string snapshot_csv(const obs::snapshot& snap) {
    std::ostringstream os;
    snap.write_csv(os);
    return os.str();
}

std::string trace_json(const obs::trace_export& trace) {
    std::ostringstream os;
    trace.write_chrome_json(os);
    return os.str();
}

/// All three maintenance mechanisms on, plus storms: the config's whole
/// point is to exercise every maintenance wake path (refresh boundary,
/// scrub slot, hammer mitigation, injected storm) in one short run.
/// Unaware mode so admission never refuses a trial and every seed
/// simulates.
maintenance_exp_config det_cfg(unsigned threads) {
    maintenance_exp_config cfg;
    cfg.trials = 3;
    cfg.measure_cycles = 12'000;
    cfg.seed = 3;
    cfg.threads = threads;
    cfg.maintenance_aware = false;
    cfg.memctrl.timing.t_refi = 975;
    cfg.memctrl.timing.t_rfc = 65;
    cfg.memctrl.maintenance.scrub_interval = 1024;
    cfg.memctrl.maintenance.scrub_duration = 16;
    cfg.memctrl.maintenance.hammer_threshold = 128;
    cfg.memctrl.maintenance.hammer_mitigation_cycles = 16;
    cfg.storm_intensity = 0.4;
    cfg.watchdog.check_period = 512;
    cfg.collect_metrics = true;
    cfg.collect_trace = true;
    return cfg;
}

void expect_equal_exports(const maintenance_exp_result& a,
                          const maintenance_exp_result& b) {
    ASSERT_FALSE(a.metrics.empty());
    EXPECT_EQ(snapshot_csv(a.totals), snapshot_csv(b.totals));
    EXPECT_EQ(snapshot_csv(a.metrics), snapshot_csv(b.metrics));
    EXPECT_EQ(trace_json(a.trace), trace_json(b.trace));
    EXPECT_EQ(a.refreshes, b.refreshes);
    EXPECT_EQ(a.scrubs, b.scrubs);
    EXPECT_EQ(a.hammer_mitigations, b.hammer_mitigations);
    EXPECT_EQ(a.maintenance_stolen_cycles, b.maintenance_stolen_cycles);
    EXPECT_EQ(a.maintenance_storm_cycles, b.maintenance_storm_cycles);
    EXPECT_EQ(a.hard_misses, b.hard_misses);
    EXPECT_EQ(a.best_effort_misses, b.best_effort_misses);
}

TEST(maintenance_determinism, event_matches_lockstep_at_threads_1_and_4) {
    for (const unsigned threads : {1u, 4u}) {
        maintenance_exp_result event_r, lockstep_r;
        {
            scoped_engine guard(simulator::engine::event);
            event_r = run_maintenance_experiment(det_cfg(threads));
        }
        {
            scoped_engine guard(simulator::engine::lockstep);
            lockstep_r = run_maintenance_experiment(det_cfg(threads));
        }
        SCOPED_TRACE(threads);
        // The run must have real maintenance traffic to compare.
        EXPECT_GT(event_r.refreshes, 0u);
        EXPECT_GT(event_r.scrubs, 0u);
        EXPECT_GT(event_r.maintenance_storm_cycles, 0u);
        expect_equal_exports(event_r, lockstep_r);
    }
}

TEST(maintenance_determinism, thread_count_invariant_per_engine) {
    for (const auto engine :
         {simulator::engine::event, simulator::engine::lockstep}) {
        scoped_engine guard(engine);
        const auto serial = run_maintenance_experiment(det_cfg(1));
        const auto parallel = run_maintenance_experiment(det_cfg(4));
        SCOPED_TRACE(engine == simulator::engine::event ? "event"
                                                        : "lockstep");
        expect_equal_exports(serial, parallel);
    }
}

} // namespace
} // namespace bluescale::harness
