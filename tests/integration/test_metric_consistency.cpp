// Cross-design properties of the measurement machinery itself: the
// blocking-latency metric and the latency accounting must be mutually
// consistent for every design, or Fig. 6's comparisons are meaningless.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/factory.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "workload/taskset_gen.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale {
namespace {

using harness::ic_build_options;
using harness::ic_kind;
using harness::k_extended_kinds;
using harness::kind_name;
using harness::make_interconnect;

struct observed {
    std::vector<mem_request> done;
};

observed run_design(ic_kind kind, std::uint64_t seed) {
    const std::uint32_t n = 16;
    rng r(seed);
    auto tasksets = workload::make_client_tasksets(r, n, 0.75, 0.75);
    ic_build_options opts;
    opts.n_clients = n;
    for (const auto& ts : tasksets) {
        opts.client_utilizations.push_back(workload::utilization(ts));
    }
    auto ic = make_interconnect(kind, opts);
    memory_controller mem;
    ic->attach_memory(mem);

    std::vector<std::unique_ptr<workload::traffic_generator>> clients;
    for (std::uint32_t c = 0; c < n; ++c) {
        clients.push_back(std::make_unique<workload::traffic_generator>(
            c, tasksets[c], *ic, seed + c));
    }
    observed out;
    ic->set_response_handler([&](mem_request&& req) {
        out.done.push_back(req);
        clients[req.client]->on_response(std::move(req));
    });
    simulator sim;
    for (auto& c : clients) sim.add(*c);
    sim.add(*ic);
    sim.add(mem);
    sim.run(20'000);
    return out;
}

class metric_consistency : public ::testing::TestWithParam<ic_kind> {};

TEST_P(metric_consistency, blocking_never_exceeds_total_latency) {
    const auto obs = run_design(GetParam(), 4242);
    ASSERT_GT(obs.done.size(), 200u) << kind_name(GetParam());
    for (const auto& r : obs.done) {
        EXPECT_LE(r.blocked_cycles, r.total_latency())
            << kind_name(GetParam()) << " request " << r.id;
    }
}

TEST_P(metric_consistency, timestamps_are_causally_ordered) {
    const auto obs = run_design(GetParam(), 777);
    for (const auto& r : obs.done) {
        EXPECT_LE(r.issue_cycle, r.mem_start) << kind_name(GetParam());
        EXPECT_LE(r.mem_start, r.mem_done) << kind_name(GetParam());
        EXPECT_LE(r.mem_done, r.complete_cycle) << kind_name(GetParam());
    }
}

TEST_P(metric_consistency, latency_includes_memory_service_floor) {
    // Every transaction pays at least the row-hit service time.
    const dram_timing t;
    const auto obs = run_design(GetParam(), 99);
    for (const auto& r : obs.done) {
        EXPECT_GE(r.mem_done - r.mem_start, t.t_cas + t.t_burst)
            << kind_name(GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(designs, metric_consistency,
                         ::testing::ValuesIn(k_extended_kinds),
                         [](const auto& pinfo) {
                             switch (pinfo.param) {
                             case ic_kind::axi_icrt: return "axi_icrt";
                             case ic_kind::bluetree: return "bluetree";
                             case ic_kind::bluetree_smooth:
                                 return "bluetree_smooth";
                             case ic_kind::gsmtree_tdm: return "gsmtree_tdm";
                             case ic_kind::gsmtree_fbsp:
                                 return "gsmtree_fbsp";
                             case ic_kind::bluescale: return "bluescale";
                             case ic_kind::axi_hyperconnect:
                                 return "axi_hyperconnect";
                             }
                             return "unknown";
                         });

} // namespace
} // namespace bluescale
