// Property test linking the hardware model to the theory: a Scale Element
// port configured with interface (Pi, Theta) and kept backlogged must
// deliver, in ANY window of t time units, at least sbf(t) transactions
// (the periodic resource model's guarantee that the analysis builds on).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "analysis/periodic_resource.hpp"
#include "core/scale_element.hpp"

namespace bluescale::core {
namespace {

class supply_conformance
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(supply_conformance, backlogged_port_meets_sbf_in_every_window) {
    const auto [pi, theta] = GetParam();
    se_params params;
    params.unit_cycles = 1; // one cycle per unit keeps windows exact
    params.buffer_depth = 8;
    params.work_conserving = false; // measure the guarantee, not slack
    scale_element se("SE", params);
    se.configure_port(0, pi, theta);

    std::vector<std::uint64_t> cumulative{0}; // forwards by end of unit t
    std::uint64_t forwarded = 0;
    se.bind_sink([] { return true; },
                 [&](mem_request) { ++forwarded; });

    // Prefill so the buffer is already visible at cycle 0 (the one-cycle
    // load latency is not part of the supply guarantee).
    while (se.port_can_accept(0)) {
        mem_request r;
        r.level_deadline = 1000;
        se.port_push(0, r);
    }
    se.commit();

    const std::uint64_t horizon = 20 * pi;
    for (cycle_t now = 0; now < horizon; ++now) {
        while (se.port_can_accept(0)) {
            mem_request r;
            // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
            r.level_deadline = now + 1000;
            se.port_push(0, r);
        }
        se.tick(now);
        se.commit();
        cumulative.push_back(forwarded);
    }

    const analysis::resource_interface iface{pi, theta};
    for (std::uint64_t t0 = 0; t0 + 1 < cumulative.size(); ++t0) {
        for (std::uint64_t len = 1; t0 + len < cumulative.size(); ++len) {
            const std::uint64_t supplied =
                cumulative[t0 + len] - cumulative[t0];
            ASSERT_GE(supplied, analysis::sbf(len, iface))
                << "window [" << t0 << ", " << t0 + len
                << ") undersupplied for Pi=" << pi << " Theta=" << theta;
        }
    }
}

TEST_P(supply_conformance, long_run_rate_equals_bandwidth) {
    const auto [pi, theta] = GetParam();
    se_params params;
    params.unit_cycles = 1;
    params.work_conserving = false;
    scale_element se("SE", params);
    se.configure_port(0, pi, theta);

    std::uint64_t forwarded = 0;
    se.bind_sink([] { return true; }, [&](mem_request) { ++forwarded; });

    const std::uint64_t periods = 50;
    for (cycle_t now = 0; now < periods * pi; ++now) {
        while (se.port_can_accept(0)) {
            mem_request r;
            // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
            r.level_deadline = now + 1000;
            se.port_push(0, r);
        }
        se.tick(now);
        se.commit();
    }
    // Exactly Theta per period, +/- one period's worth of phase slack.
    EXPECT_NEAR(static_cast<double>(forwarded),
                static_cast<double>(periods * theta),
                static_cast<double>(theta));
}

INSTANTIATE_TEST_SUITE_P(
    interfaces, supply_conformance,
    ::testing::Values(std::make_tuple(4u, 1u), std::make_tuple(5u, 2u),
                      std::make_tuple(8u, 3u), std::make_tuple(10u, 9u),
                      std::make_tuple(3u, 3u), std::make_tuple(16u, 5u)));

TEST(supply_conformance_multi, four_backlogged_ports_share_exactly) {
    // Four ports with total bandwidth 1.0 on a unit-rate SE: every port
    // gets exactly its share over a long run.
    se_params params;
    params.unit_cycles = 1;
    params.work_conserving = false;
    scale_element se("SE", params);
    se.configure_port(0, 4, 1);
    se.configure_port(1, 4, 1);
    se.configure_port(2, 8, 2);
    se.configure_port(3, 8, 2);

    std::array<std::uint64_t, 4> forwarded{};
    se.bind_sink([] { return true; },
                 [&](mem_request r) { ++forwarded[r.client]; });

    for (cycle_t now = 0; now < 8000; ++now) {
        for (std::uint32_t p = 0; p < 4; ++p) {
            while (se.port_can_accept(p)) {
                mem_request r;
                r.client = p;
                // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
                r.level_deadline = now + 1000;
                se.port_push(p, r);
            }
        }
        se.tick(now);
        se.commit();
    }
    for (std::uint32_t p = 0; p < 4; ++p) {
        EXPECT_NEAR(static_cast<double>(forwarded[p]), 2000.0, 20.0)
            << "port " << p;
    }
}

} // namespace
} // namespace bluescale::core
