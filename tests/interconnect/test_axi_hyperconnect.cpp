#include <gtest/gtest.h>

#include <vector>

#include "interconnect/axi_hyperconnect.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace bluescale {
namespace {

mem_request req(request_id_t id, client_id_t client, cycle_t deadline,
                std::uint64_t addr = 0) {
    mem_request r;
    r.id = id;
    r.client = client;
    r.addr = addr;
    r.abs_deadline = deadline;
    r.level_deadline = deadline;
    return r;
}

struct rig {
    explicit rig(std::uint32_t n, axi_hyperconnect_config cfg = {})
        : net(n, cfg) {
        net.attach_memory(mem);
        net.set_response_handler(
            [this](mem_request&& r) { completed.push_back(std::move(r)); });
        sim.add(net);
        sim.add(mem);
    }
    void run_until_drained(cycle_t max = 20'000) {
        sim.run_until([this] { return net.in_flight() == 0; }, max);
    }
    axi_hyperconnect net;
    memory_controller mem;
    std::vector<mem_request> completed;
    simulator sim;
};

TEST(axi_hyperconnect, single_request_round_trip) {
    rig r(4);
    r.net.client_push(1, req(1, 1, 10'000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 1u);
}

TEST(axi_hyperconnect, round_robin_fairness_under_saturation) {
    axi_hyperconnect_config cfg;
    cfg.queue_depth = 8;
    rig r(2, cfg);
    // Both clients saturate: grants must alternate, so completion
    // interleaves regardless of deadlines.
    for (int i = 0; i < 6; ++i) {
        r.net.client_push(0, req(10 + i, 0, 100, 0));      // urgent
        r.net.client_push(1, req(20 + i, 1, 1'000'000, 0)); // relaxed
    }
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 12u);
    int flips = 0;
    for (std::size_t i = 1; i < r.completed.size(); ++i) {
        if (r.completed[i].client != r.completed[i - 1].client) ++flips;
    }
    EXPECT_GE(flips, 9) << "round robin should interleave grants";
}

TEST(axi_hyperconnect, outstanding_cap_bounds_a_flooding_client) {
    axi_hyperconnect_config cfg;
    cfg.max_outstanding_per_client = 2;
    cfg.queue_depth = 8;
    rig r(2, cfg);
    for (int i = 0; i < 8; ++i) {
        r.net.client_push(0, req(i, 0, 1'000'000, i * 64));
    }
    // Run a few cycles: no more than 2 of client 0's requests may be past
    // the arbiter at once.
    for (int i = 0; i < 12; ++i) {
        r.sim.step();
        EXPECT_LE(r.net.outstanding(0), 2u);
    }
    r.run_until_drained();
    EXPECT_EQ(r.completed.size(), 8u);
    EXPECT_EQ(r.net.outstanding(0), 0u);
}

TEST(axi_hyperconnect, credits_released_on_response) {
    axi_hyperconnect_config cfg;
    cfg.max_outstanding_per_client = 1;
    rig r(2, cfg);
    r.net.client_push(0, req(1, 0, 100'000));
    r.net.client_push(0, req(2, 0, 100'000, 64));
    r.run_until_drained();
    // With credit 1 both still complete, strictly serialized.
    ASSERT_EQ(r.completed.size(), 2u);
    EXPECT_LT(r.completed[0].complete_cycle,
              r.completed[1].complete_cycle);
}

TEST(axi_hyperconnect, blocking_charged_on_inversion) {
    // Round robin is deadline-agnostic: when the pointer is past the
    // urgent client, relaxed requests are granted while the urgent one
    // waits -- blocking accrues. (Arriving mid-rotation matters: with the
    // pointer at the urgent client it would be served immediately.)
    axi_hyperconnect_config cfg;
    cfg.queue_depth = 8;
    rig r(4, cfg);
    for (int i = 0; i < 4; ++i) {
        for (client_id_t c = 1; c <= 3; ++c) {
            r.net.client_push(c, req(20 + 10 * c + i, c, 1'000'000, 0));
        }
    }
    r.sim.run(3); // rotation in flight, pointer past client 0
    r.net.client_push(0, req(1, 0, 50, 0));
    r.run_until_drained();
    cycle_t blocked = 0;
    for (const auto& c : r.completed) {
        if (c.id == 1) blocked = c.blocked_cycles;
    }
    EXPECT_GT(blocked, 0u);
}

TEST(axi_hyperconnect, no_loss_under_sustained_load) {
    rig r(8);
    std::uint64_t pushed = 0;
    for (cycle_t now = 0; now < 4000; ++now) {
        for (client_id_t c = 0; c < 8; ++c) {
            if (now % 32 == 4 * c && r.net.client_can_accept(c)) {
                const std::uint64_t id = pushed++;
                // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
                r.net.client_push(c, req(id, c, now + 800, id * 64));
            }
        }
        r.sim.step();
    }
    r.run_until_drained(100'000);
    EXPECT_EQ(r.completed.size(), pushed);
}

TEST(axi_hyperconnect, reset_restores_clean_state) {
    rig r(4);
    r.net.client_push(0, req(1, 0, 1000));
    r.sim.run(2);
    r.net.reset();
    r.mem.reset();
    EXPECT_EQ(r.net.in_flight(), 0u);
    EXPECT_EQ(r.net.outstanding(0), 0u);
    r.net.client_push(2, req(5, 2, 100'000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 5u);
}

} // namespace
} // namespace bluescale
