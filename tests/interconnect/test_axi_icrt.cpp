#include <gtest/gtest.h>

#include <vector>

#include "interconnect/axi_icrt.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace bluescale {
namespace {

mem_request req(request_id_t id, client_id_t client, cycle_t deadline,
                std::uint64_t addr = 0) {
    mem_request r;
    r.id = id;
    r.client = client;
    r.addr = addr;
    r.abs_deadline = deadline;
    r.level_deadline = deadline;
    return r;
}

struct rig {
    explicit rig(std::uint32_t n, axi_icrt_config cfg = {})
        : net(n, cfg) {
        net.attach_memory(mem);
        net.set_response_handler(
            [this](mem_request&& r) { completed.push_back(std::move(r)); });
        sim.add(net);
        sim.add(mem);
    }
    void run_until_drained(cycle_t max = 20'000) {
        sim.run_until([this] { return net.in_flight() == 0; }, max);
    }
    axi_icrt net;
    memory_controller mem;
    std::vector<mem_request> completed;
    simulator sim;
};

TEST(axi_icrt, single_request_round_trip) {
    rig r(4);
    r.net.client_push(2, req(1, 2, 10'000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 1u);
    EXPECT_EQ(r.completed[0].client, 2u);
}

TEST(axi_icrt, default_arb_latency_grows_with_clients) {
    EXPECT_EQ(axi_icrt::default_arb_latency(2), 1u);
    EXPECT_EQ(axi_icrt::default_arb_latency(16), 2u);
    EXPECT_EQ(axi_icrt::default_arb_latency(64), 3u);
    EXPECT_GE(axi_icrt::default_arb_latency(256),
              axi_icrt::default_arb_latency(64));
}

TEST(axi_icrt, global_edf_grants_earliest_deadline_first) {
    rig r(4);
    // Three clients with distinct deadlines; later-deadline ones pushed
    // first. The central arbiter must reorder by deadline.
    r.net.client_push(0, req(1, 0, 9000, 0));
    r.net.client_push(1, req(2, 1, 100, 64));
    r.net.client_push(2, req(3, 2, 5000, 128));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 3u);
    // The earliest-deadline request must start memory service first.
    cycle_t start1 = 0, start2 = 0, start3 = 0;
    for (const auto& c : r.completed) {
        if (c.id == 1) start1 = c.mem_start;
        if (c.id == 2) start2 = c.mem_start;
        if (c.id == 3) start3 = c.mem_start;
    }
    EXPECT_LT(start2, start3);
    EXPECT_LT(start3, start1);
}

TEST(axi_icrt, regulation_throttles_greedy_client) {
    axi_icrt_config cfg;
    cfg.regulation_period = 64;
    rig r(2, cfg);
    r.net.set_client_share(0, 0.1); // ~6 requests per 64-cycle window
    // Greedy client 0 floods; client 1 idle.
    std::uint64_t pushed = 0;
    for (cycle_t now = 0; now < 640; ++now) {
        if (r.net.client_can_accept(0)) {
            const std::uint64_t id = pushed++;
            r.net.client_push(0, req(id, 0, 1'000'000, id * 64));
        }
        r.sim.step();
    }
    r.run_until_drained(100'000);
    // Without regulation the memory would service ~640/4 = 160 requests;
    // with a 10% share only ~6 per window * 10 windows ~= 64 start slots.
    EXPECT_LE(r.completed.size(), 80u);
    EXPECT_GE(r.completed.size(), 40u);
}

TEST(axi_icrt, unregulated_clients_unthrottled) {
    rig r(2);
    std::uint64_t pushed = 0;
    for (cycle_t now = 0; now < 640; ++now) {
        if (r.net.client_can_accept(0)) {
            const std::uint64_t id = pushed++;
            r.net.client_push(0, req(id, 0, 1'000'000, id * 64));
        }
        r.sim.step();
    }
    r.run_until_drained(100'000);
    EXPECT_GT(r.completed.size(), 120u);
}

TEST(axi_icrt, blocking_charged_on_inversion) {
    axi_icrt_config cfg;
    cfg.regulation_period = 32;
    rig r(2, cfg);
    // Regulate client 0 to starve its budget, forcing grants of client
    // 1's later-deadline requests while client 0's early one waits.
    r.net.set_client_share(0, 0.01); // 1 request per window
    r.net.client_push(0, req(1, 0, 50, 0));
    r.net.client_push(0, req(2, 0, 60, 64));
    for (int i = 0; i < 6; ++i) {
        r.net.client_push(1, req(10 + i, 1, 1'000'000, 4096 + i * 64));
    }
    r.run_until_drained(100'000);
    cycle_t blocked = 0;
    for (const auto& c : r.completed) {
        if (c.id == 2) blocked = c.blocked_cycles;
    }
    EXPECT_GT(blocked, 0u);
}

TEST(axi_icrt, backpressure_per_client_queue) {
    axi_icrt_config cfg;
    cfg.queue_depth = 2;
    rig r(2, cfg);
    r.net.client_push(0, req(1, 0, 100));
    r.net.client_push(0, req(2, 0, 100));
    EXPECT_FALSE(r.net.client_can_accept(0));
    EXPECT_TRUE(r.net.client_can_accept(1));
}

TEST(axi_icrt, no_loss_under_sustained_load) {
    rig r(8);
    std::uint64_t pushed = 0;
    for (cycle_t now = 0; now < 4000; ++now) {
        for (client_id_t c = 0; c < 8; ++c) {
            if (now % 64 == 8 * c && r.net.client_can_accept(c)) {
                const std::uint64_t id = pushed++;
                // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
                r.net.client_push(c, req(id, c, now + 500, id * 64));
            }
        }
        r.sim.step();
    }
    r.run_until_drained(100'000);
    EXPECT_EQ(r.completed.size(), pushed);
}

TEST(axi_icrt, reset_restores_clean_state) {
    rig r(4);
    r.net.set_client_share(1, 0.5);
    r.net.client_push(1, req(1, 1, 1000));
    r.sim.run(2);
    r.net.reset();
    r.mem.reset();
    EXPECT_EQ(r.net.in_flight(), 0u);
    r.net.client_push(3, req(7, 3, 100'000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 7u);
}

} // namespace
} // namespace bluescale
