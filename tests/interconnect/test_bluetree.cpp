#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "interconnect/bluetree.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace bluescale {
namespace {

mem_request req(request_id_t id, client_id_t client, cycle_t deadline,
                std::uint64_t addr = 0) {
    mem_request r;
    r.id = id;
    r.client = client;
    r.addr = addr;
    r.abs_deadline = deadline;
    r.level_deadline = deadline;
    return r;
}

struct rig {
    explicit rig(std::uint32_t n, bluetree_config cfg = {})
        : net(n, cfg) {
        net.attach_memory(mem);
        net.set_response_handler(
            [this](mem_request&& r) { completed.push_back(std::move(r)); });
        sim.add(net);
        sim.add(mem);
    }
    void run_until_drained(cycle_t max = 10'000) {
        sim.run_until([this] { return net.in_flight() == 0; }, max);
    }
    bluetree net;
    memory_controller mem;
    std::vector<mem_request> completed;
    simulator sim;
};

TEST(bluetree, single_request_round_trip) {
    rig r(4);
    r.net.client_push(0, req(1, 0, 1000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 1u);
    EXPECT_GT(r.completed[0].complete_cycle, 0u);
}

TEST(bluetree, levels_match_client_count) {
    EXPECT_EQ(bluetree(2).levels(), 1u);
    EXPECT_EQ(bluetree(4).levels(), 2u);
    EXPECT_EQ(bluetree(16).levels(), 4u);
    EXPECT_EQ(bluetree(64).levels(), 6u);
}

TEST(bluetree, pads_odd_client_counts) {
    rig r(5); // pads to 8
    EXPECT_EQ(r.net.levels(), 3u);
    r.net.client_push(4, req(1, 4, 1000));
    r.run_until_drained();
    EXPECT_EQ(r.completed.size(), 1u);
}

TEST(bluetree, all_clients_reach_memory) {
    rig r(16);
    for (client_id_t c = 0; c < 16; ++c) {
        ASSERT_TRUE(r.net.client_can_accept(c));
        r.net.client_push(c, req(c, c, 10'000));
    }
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 16u);
    std::set<client_id_t> seen;
    for (const auto& c : r.completed) seen.insert(c.client);
    EXPECT_EQ(seen.size(), 16u);
}

TEST(bluetree, responses_routed_to_issuing_client) {
    rig r(8);
    for (client_id_t c = 0; c < 8; ++c) {
        r.net.client_push(c, req(100 + c, c, 10'000, c * 4096));
    }
    r.run_until_drained();
    for (const auto& done : r.completed) {
        EXPECT_EQ(done.id, 100u + done.client);
    }
}

TEST(bluetree, no_requests_lost_under_sustained_load) {
    rig r(8);
    std::uint64_t pushed = 0;
    for (cycle_t now = 0; now < 3000; ++now) {
        for (client_id_t c = 0; c < 8; ++c) {
            if (now % 16 == c * 2 && r.net.client_can_accept(c)) {
                const std::uint64_t id = pushed++;
                // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
                r.net.client_push(c, req(id, c, now + 400, id * 64));
            }
        }
        r.sim.step();
    }
    r.run_until_drained(50'000);
    EXPECT_EQ(r.completed.size(), pushed);
    EXPECT_EQ(r.net.in_flight(), 0u);
}

TEST(bluetree, backpressure_when_leaf_queue_full) {
    bluetree_config cfg;
    cfg.queue_depth = 2;
    rig r(4, cfg);
    // Without ticking, pushes accumulate in the leaf queue.
    EXPECT_TRUE(r.net.client_can_accept(0));
    r.net.client_push(0, req(1, 0, 100));
    r.net.client_push(0, req(2, 0, 100));
    EXPECT_FALSE(r.net.client_can_accept(0));
}

TEST(bluetree, alpha_one_alternates_under_saturation) {
    // With alpha=1 (round-robin) and both inputs saturated, grants must
    // alternate; completion order reflects it.
    bluetree_config cfg;
    cfg.alpha = 1;
    rig r(2, cfg);
    // All requests target the same line so the memory services them in
    // arrival order (no row-hit reordering).
    for (int i = 0; i < 4; ++i) {
        r.net.client_push(0, req(10 + i, 0, 10'000, 0));
        r.net.client_push(1, req(20 + i, 1, 10'000, 0));
    }
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 8u);
    // Memory services in arrival order; arrival alternates.
    int flips = 0;
    for (std::size_t i = 1; i < r.completed.size(); ++i) {
        if (r.completed[i].client != r.completed[i - 1].client) ++flips;
    }
    EXPECT_GE(flips, 5);
}

TEST(bluetree, high_alpha_favors_left_input) {
    bluetree_config cfg;
    cfg.alpha = 8;
    cfg.queue_depth = 16;
    rig r(2, cfg);
    for (int i = 0; i < 8; ++i) {
        r.net.client_push(0, req(10 + i, 0, 10'000, i * 64));
        r.net.client_push(1, req(20 + i, 1, 10'000, i * 64 + 4096));
    }
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 16u);
    // Left client's requests should all complete before the right
    // client's last one (it only sneaks in after alpha grants).
    std::map<client_id_t, cycle_t> last_done;
    for (const auto& c : r.completed) {
        last_done[c.client] = std::max(last_done[c.client],
                                       c.complete_cycle);
    }
    EXPECT_LT(last_done[0], last_done[1]);
}

TEST(bluetree, blocking_charged_on_priority_inversion) {
    // The blocking-factor heuristic ignores deadlines: with alpha = 2, an
    // early-deadline request on the low-priority (right) input waits
    // while late-deadline left-input requests are granted.
    bluetree_config cfg;
    cfg.alpha = 2;
    cfg.queue_depth = 4;
    rig r(2, cfg);
    for (int i = 0; i < 4; ++i) {
        r.net.client_push(0, req(10 + i, 0, 1'000'000)); // late, HP input
    }
    r.net.client_push(1, req(1, 1, 100)); // early, LP input
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 5u);
    cycle_t blocked = 0;
    for (const auto& c : r.completed) {
        if (c.id == 1) blocked = c.blocked_cycles;
    }
    EXPECT_GT(blocked, 0u);
}

TEST(bluetree, smooth_variant_deeper_buffers) {
    auto smooth = bluetree::make_smooth(8);
    EXPECT_GT(smooth.config().queue_depth, bluetree_config{}.queue_depth);
    EXPECT_GT(smooth.config().smooth_depth, 0u);
    EXPECT_EQ(smooth.depth_of(0), 2 * smooth.levels());
}

TEST(bluetree, smooth_variant_round_trip) {
    bluetree_config cfg;
    cfg.queue_depth = 8;
    cfg.smooth_depth = 4;
    rig r(8, cfg);
    for (client_id_t c = 0; c < 8; ++c) {
        r.net.client_push(c, req(c, c, 10'000, c * 64));
    }
    r.run_until_drained();
    EXPECT_EQ(r.completed.size(), 8u);
}

TEST(bluetree, reset_clears_in_flight_state) {
    rig r(4);
    r.net.client_push(0, req(1, 0, 1000));
    r.sim.run(2);
    r.net.reset();
    r.mem.reset();
    EXPECT_EQ(r.net.in_flight(), 0u);
    // Fabric must still work after reset.
    r.net.client_push(1, req(2, 1, 1000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 2u);
}

TEST(bluetree, forwarded_counter_matches_completions) {
    rig r(4);
    for (client_id_t c = 0; c < 4; ++c) {
        r.net.client_push(c, req(c, c, 10'000, c * 64));
    }
    r.run_until_drained();
    EXPECT_EQ(r.net.forwarded_to_memory(), 4u);
}

} // namespace
} // namespace bluescale
