#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "interconnect/gsmtree.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace bluescale {
namespace {

mem_request req(request_id_t id, client_id_t client, cycle_t deadline,
                std::uint64_t addr = 0) {
    mem_request r;
    r.id = id;
    r.client = client;
    r.addr = addr;
    r.abs_deadline = deadline;
    r.level_deadline = deadline;
    return r;
}

struct rig {
    explicit rig(std::uint32_t n, gsmtree_config cfg = {})
        : net(n, cfg) {
        net.attach_memory(mem);
        net.set_response_handler(
            [this](mem_request&& r) { completed.push_back(std::move(r)); });
        sim.add(net);
        sim.add(mem);
    }
    void run_until_drained(cycle_t max = 20'000) {
        sim.run_until([this] { return net.in_flight() == 0; }, max);
    }
    gsmtree net;
    memory_controller mem;
    std::vector<mem_request> completed;
    simulator sim;
};

TEST(gsmtree, tdm_table_one_slot_per_client) {
    gsmtree net(8);
    ASSERT_EQ(net.slot_table().size(), 8u);
    for (client_id_t c = 0; c < 8; ++c) {
        EXPECT_EQ(net.slot_table()[c], c);
    }
}

TEST(gsmtree, fbsp_table_proportional_to_weights) {
    gsmtree_config cfg;
    cfg.reservation = gsm_reservation::fbsp;
    cfg.client_weights = {3.0, 1.0, 1.0, 1.0};
    cfg.frame_slots = 12;
    gsmtree net(4, cfg);
    std::vector<int> counts(4, 0);
    for (client_id_t c : net.slot_table()) ++counts[c];
    int total = 0;
    for (int c : counts) total += c;
    EXPECT_EQ(total, 12);
    // Heaviest client dominates; every client keeps its guaranteed slot.
    for (int i = 1; i < 4; ++i) {
        EXPECT_GT(counts[0], counts[i]);
        EXPECT_GE(counts[i], 1);
    }
}

TEST(gsmtree, fbsp_never_starves_light_clients) {
    gsmtree_config cfg;
    cfg.reservation = gsm_reservation::fbsp;
    // Extremely skewed workloads (the Fig. 7 regression: a DNN HA next
    // to nearly idle processors): every client still gets >= 1 slot.
    cfg.client_weights = {10.0, 0.001, 0.0005, 0.002};
    gsmtree net(4, cfg);
    std::vector<int> counts(4, 0);
    for (client_id_t c : net.slot_table()) ++counts[c];
    for (int i = 0; i < 4; ++i) EXPECT_GE(counts[i], 1) << i;
}

TEST(gsmtree, fbsp_spreads_slots_evenly) {
    gsmtree_config cfg;
    cfg.reservation = gsm_reservation::fbsp;
    cfg.client_weights = {1.0, 1.0};
    cfg.frame_slots = 8;
    gsmtree net(2, cfg);
    // Smooth WRR with equal weights must alternate, not batch.
    const auto& table = net.slot_table();
    for (std::size_t i = 1; i < table.size(); ++i) {
        EXPECT_NE(table[i], table[i - 1]);
    }
}

TEST(gsmtree, single_request_round_trip) {
    rig r(4);
    r.net.client_push(0, req(1, 0, 100'000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 1u);
}

TEST(gsmtree, all_clients_served) {
    rig r(8);
    for (client_id_t c = 0; c < 8; ++c) {
        r.net.client_push(c, req(c, c, 100'000, c * 64));
    }
    r.run_until_drained();
    EXPECT_EQ(r.completed.size(), 8u);
}

TEST(gsmtree, strict_tdm_is_non_work_conserving) {
    // A single active client on an 8-client TDM frame gets exactly one
    // slot per frame, even with everything else idle.
    gsmtree_config cfg;
    cfg.slot_cycles = 4;
    cfg.queue_depth = 16;
    rig r(8, cfg);
    for (int i = 0; i < 8; ++i) {
        r.net.client_push(0, req(i, 0, 1'000'000, i * 64));
    }
    r.run_until_drained(100'000);
    ASSERT_EQ(r.completed.size(), 8u);
    // 8 requests, one per 8-slot frame of 32 cycles: the last one cannot
    // be admitted before 7 full frames have elapsed.
    cycle_t last = 0;
    for (const auto& c : r.completed) {
        last = std::max(last, c.complete_cycle);
    }
    EXPECT_GE(last, 7u * 8u * 4u);
}

TEST(gsmtree, backpressure_when_client_queue_full) {
    gsmtree_config cfg;
    cfg.queue_depth = 2;
    rig r(4, cfg);
    r.net.client_push(0, req(1, 0, 100));
    r.net.client_push(0, req(2, 0, 100));
    EXPECT_FALSE(r.net.client_can_accept(0));
    EXPECT_TRUE(r.net.client_can_accept(1));
}

TEST(gsmtree, blocking_charged_against_earlier_deadlines) {
    rig r(4);
    // Client 1's slot grants a late-deadline request while client 0's
    // early-deadline request waits for its slot.
    r.net.client_push(1, req(2, 1, 1'000'000));
    r.net.client_push(0, req(1, 0, 10));
    // Let the frame advance into client 1's slot before client 0's next.
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 2u);
    // At least one of the slot grants happened while the other waited.
    cycle_t blocked0 = 0;
    for (const auto& c : r.completed) {
        if (c.id == 1) blocked0 = c.blocked_cycles;
    }
    // Client 0 owns slot 0 and was pushed before any slot elapsed, so it
    // may or may not be blocked depending on admission phase; the metric
    // must never be charged to the LATE-deadline request though.
    for (const auto& c : r.completed) {
        if (c.id == 2) {
            EXPECT_EQ(c.blocked_cycles, 0u);
        }
    }
    (void)blocked0;
}

TEST(gsmtree, no_loss_under_sustained_load) {
    rig r(4);
    std::uint64_t pushed = 0;
    for (cycle_t now = 0; now < 4000; ++now) {
        for (client_id_t c = 0; c < 4; ++c) {
            if (now % 32 == 8 * c && r.net.client_can_accept(c)) {
                const std::uint64_t id = pushed++;
                // detlint:allow(cycle-step): synthetic request deadline, not engine cadence
                r.net.client_push(c, req(id, c, now + 1000, id * 64));
            }
        }
        r.sim.step();
    }
    r.run_until_drained(100'000);
    EXPECT_EQ(r.completed.size(), pushed);
}

TEST(gsmtree, reset_restores_clean_state) {
    rig r(4);
    r.net.client_push(0, req(1, 0, 1000));
    r.sim.run(3);
    r.net.reset();
    r.mem.reset();
    EXPECT_EQ(r.net.in_flight(), 0u);
    r.net.client_push(2, req(9, 2, 100'000));
    r.run_until_drained();
    ASSERT_EQ(r.completed.size(), 1u);
    EXPECT_EQ(r.completed[0].id, 9u);
}

} // namespace
} // namespace bluescale
