// Behaviour shared by every design through the interconnect base class:
// response delay-line ordering, in-flight accounting, and the
// blocking-latency measurement helper -- plus cross-design fuzz/property
// checks (determinism, conservation under random backpressure).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/factory.hpp"
#include "mem/memory_controller.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace bluescale {
namespace {

using harness::ic_build_options;
using harness::ic_kind;
using harness::k_all_kinds;
using harness::kind_name;
using harness::make_interconnect;

mem_request req(request_id_t id, client_id_t client, cycle_t deadline,
                std::uint64_t addr) {
    mem_request r;
    r.id = id;
    r.client = client;
    r.addr = addr;
    r.abs_deadline = deadline;
    r.level_deadline = deadline;
    return r;
}

/// Drives one design with a deterministic random injection pattern and
/// random memory-side pressure; returns (completions, checksum of
/// completion order).
struct fuzz_outcome {
    std::uint64_t completed = 0;
    std::uint64_t order_checksum = 1469598103934665603ull;
    std::uint64_t in_flight_end = 0;

    void absorb(const mem_request& r) {
        ++completed;
        order_checksum ^= r.id + 0x9e3779b97f4a7c15ull;
        order_checksum *= 1099511628211ull;
    }
};

fuzz_outcome fuzz_run(ic_kind kind, std::uint64_t seed,
                      cycle_t cycles = 6000) {
    const std::uint32_t n = 8;
    ic_build_options opts;
    opts.n_clients = n;
    opts.client_utilizations.assign(n, 0.02);
    auto ic = make_interconnect(kind, opts);
    memory_controller mem;
    ic->attach_memory(mem);
    fuzz_outcome out;
    ic->set_response_handler(
        [&](mem_request&& r) { out.absorb(r); });

    simulator sim;
    sim.add(*ic);
    sim.add(mem);
    rng rnd(seed);
    request_id_t id = 0;
    for (cycle_t now = 0; now < cycles; ++now) {
        // Random bursty injection.
        const std::uint32_t tries = static_cast<std::uint32_t>(rnd.pick(4));
        for (std::uint32_t i = 0; i < tries; ++i) {
            const auto c = static_cast<client_id_t>(rnd.pick(n));
            if (ic->client_can_accept(c)) {
                ic->client_push(
                    c, req(id, c, now + rnd.uniform_u64(50, 5000),
                           rnd.uniform_u64(0, 1u << 20) * 64));
                ++id;
            }
        }
        sim.step();
    }
    // Drain.
    sim.run_until([&] { return ic->in_flight() == 0; }, 100'000);
    out.in_flight_end = ic->in_flight();
    return out;
}

class base_fuzz : public ::testing::TestWithParam<ic_kind> {};

TEST_P(base_fuzz, conservation_under_random_bursts) {
    const auto out = fuzz_run(GetParam(), 42);
    EXPECT_EQ(out.in_flight_end, 0u) << kind_name(GetParam());
    EXPECT_GT(out.completed, 500u) << kind_name(GetParam());
}

TEST_P(base_fuzz, fully_deterministic_replay) {
    const auto a = fuzz_run(GetParam(), 1234);
    const auto b = fuzz_run(GetParam(), 1234);
    EXPECT_EQ(a.completed, b.completed) << kind_name(GetParam());
    EXPECT_EQ(a.order_checksum, b.order_checksum)
        << kind_name(GetParam())
        << ": same seed must give bit-identical completion order";
}

TEST_P(base_fuzz, different_seeds_diverge) {
    const auto a = fuzz_run(GetParam(), 1);
    const auto b = fuzz_run(GetParam(), 2);
    EXPECT_NE(a.order_checksum, b.order_checksum) << kind_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(designs, base_fuzz,
                         ::testing::ValuesIn(k_all_kinds),
                         [](const auto& pinfo) {
                             switch (pinfo.param) {
                             case ic_kind::axi_icrt: return "axi_icrt";
                             case ic_kind::bluetree: return "bluetree";
                             case ic_kind::bluetree_smooth:
                                 return "bluetree_smooth";
                             case ic_kind::gsmtree_tdm: return "gsmtree_tdm";
                             case ic_kind::gsmtree_fbsp:
                                 return "gsmtree_fbsp";
                             case ic_kind::bluescale: return "bluescale";
                             case ic_kind::axi_hyperconnect:
                                 return "axi_hyperconnect";
                             }
                             return "unknown";
                         });

TEST(interconnect_base, response_path_depth_delays_delivery) {
    // Two designs with different depths: the deeper one's first response
    // arrives later for identical timing otherwise. Use BlueScale 16 vs
    // 64 (depth 2 vs 3).
    auto time_first_response = [](std::uint32_t n) {
        ic_build_options opts;
        opts.n_clients = n;
        auto ic = make_interconnect(ic_kind::bluescale, opts);
        memory_controller mem;
        ic->attach_memory(mem);
        cycle_t first = 0;
        ic->set_response_handler([&](mem_request&& r) {
            if (first == 0) first = r.complete_cycle;
        });
        simulator sim;
        sim.add(*ic);
        sim.add(mem);
        ic->client_push(0, req(1, 0, 100'000, 0));
        sim.run(2000);
        return first;
    };
    EXPECT_LT(time_first_response(16), time_first_response(64));
}

TEST(interconnect_base, in_flight_tracks_every_stage) {
    ic_build_options opts;
    opts.n_clients = 4;
    auto ic = make_interconnect(ic_kind::bluetree, opts);
    memory_controller mem;
    ic->attach_memory(mem);
    std::uint64_t delivered = 0;
    ic->set_response_handler([&](mem_request&&) { ++delivered; });
    simulator sim;
    sim.add(*ic);
    sim.add(mem);
    EXPECT_EQ(ic->in_flight(), 0u);
    ic->client_push(0, req(1, 0, 100'000, 0));
    EXPECT_EQ(ic->in_flight(), 1u);
    sim.run_until([&] { return delivered == 1; }, 10'000);
    EXPECT_EQ(ic->in_flight(), 0u);
}

TEST(interconnect_base, forwarded_counter_monotone) {
    ic_build_options opts;
    opts.n_clients = 4;
    auto ic = make_interconnect(ic_kind::axi_icrt, opts);
    memory_controller mem;
    ic->attach_memory(mem);
    ic->set_response_handler([](mem_request&&) {});
    simulator sim;
    sim.add(*ic);
    sim.add(mem);
    for (int i = 0; i < 4; ++i) {
        ic->client_push(static_cast<client_id_t>(i),
                        req(i, static_cast<client_id_t>(i), 100'000,
                            i * 4096));
    }
    std::uint64_t prev = 0;
    for (int i = 0; i < 200; ++i) {
        sim.step();
        EXPECT_GE(ic->forwarded_to_memory(), prev);
        prev = ic->forwarded_to_memory();
    }
    EXPECT_EQ(prev, 4u);
}

} // namespace
} // namespace bluescale
