// Fixture: idiomatic BlueScale code that must produce zero findings --
// seeded rng, integral cycle math, explicit casts at the stats boundary,
// ordered containers.
#include <cstdint>
#include <map>

using cycle_t = std::uint64_t;

struct rng {
    explicit rng(std::uint64_t seed) : state_(seed) {}
    std::uint64_t next() { return state_ += 0x9e3779b97f4a7c15ull; }
    std::uint64_t state_;
};

double mean_latency(const std::map<std::uint64_t, cycle_t>& done) {
    cycle_t total = 0;
    for (const auto& [id, latency] : done) total += latency;
    if (done.empty()) return 0.0;
    return static_cast<double>(total) / static_cast<double>(done.size());
}
