// Fixture: hardcoded cycle stepping outside the horizon API (rule
// cycle-step).
#include <cstdint>

using cycle_t = std::uint64_t;

cycle_t schedule_retry(cycle_t now) { return now + 1; }
