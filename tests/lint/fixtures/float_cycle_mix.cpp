// Fixture: real-valued scaling of a cycle counter (rule float-cycle).
#include <cstdint>

using cycle_t = std::uint64_t;

cycle_t padded_deadline(cycle_t deadline) { return deadline * 1.5; }
