// Seeded violation: heap growth on the tick path, one hop from the root
// through the approximate call graph (tick -> refill).
#include <vector>

using cycle_t = unsigned long long;

struct burst_buffer {
    std::vector<int> backlog_;

    void refill(int v) { backlog_.push_back(v); }

    void tick(cycle_t) { refill(1); }
};
