// The sanctioned shape: reserve-then-index. All growth happens in setup
// (unreachable from the roots, so never checked); the tick path only
// reads and writes pre-sized slots.
#include <vector>

using cycle_t = unsigned long long;

struct steady_buffer {
    std::vector<int> slots_;
    std::size_t head_ = 0;

    void setup(std::size_t depth) {
        slots_.reserve(depth);
        slots_.resize(depth);
    }

    void tick(cycle_t) {
        slots_[head_] += 1;
        head_ = (head_ + 1) % slots_.size();
    }
};
