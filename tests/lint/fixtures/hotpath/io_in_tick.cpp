// Seeded violation: file/console I/O on the tick path. Hot code records
// through obs counters/trace; exporters run after the simulation.
#include <cstdio>

using cycle_t = unsigned long long;

struct chatty_port {
    void tick(cycle_t now) { std::printf("tick %llu\n", now); }
};
