// Seeded violation: blocking synchronization on the tick path.
// Components are single-threaded within a trial; locks belong at the
// harness boundary.
#include <mutex>

using cycle_t = unsigned long long;

struct guarded_port {
    std::mutex m_;
    int pending_ = 0;

    void tick(cycle_t) {
        std::lock_guard<std::mutex> hold(m_);
        ++pending_;
    }
};
