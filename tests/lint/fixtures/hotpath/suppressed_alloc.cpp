// Twin of alloc_in_tick.cpp: the same push, blessed because the backing
// store is pre-reserved at construction.
#include <vector>

using cycle_t = unsigned long long;

struct burst_buffer {
    std::vector<int> backlog_;

    burst_buffer() { backlog_.reserve(64); }

    void tick(cycle_t) {
        if (backlog_.size() >= 64) return;
        // detlint:allow(hotpath-alloc): push into pre-reserved storage
        backlog_.push_back(1);
    }
};
