// Twin of io_in_tick.cpp: debug-build-only tracing, blessed.
#include <cstdio>

using cycle_t = unsigned long long;

struct traced_port {
    void tick(cycle_t now) {
#ifndef NDEBUG
        // detlint:allow(hotpath-io): debug-build tracing, compiled out
        if (now == 0) std::fprintf(stderr, "first tick\n");
#endif
    }
};
