// Twin of lock_in_tick.cpp: a non-blocking namesake, blessed.
using cycle_t = unsigned long long;

struct spin_cell {
    int held_ = 0;

    // detlint:allow(hotpath-lock): project spinlock try, never blocks
    bool try_lock() { return held_++ == 0; }

    void tick(cycle_t) {
        // detlint:allow(hotpath-lock): project spinlock try, never blocks
        if (!this->try_lock()) return;
        held_ = 0;
    }
};
