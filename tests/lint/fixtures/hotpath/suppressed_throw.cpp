// Twin of throw_in_tick.cpp: an unreachable defensive throw, blessed.
#include <stdexcept>

using cycle_t = unsigned long long;

struct checked_port {
    int budget_ = 0;

    void tick(cycle_t) {
        // detlint:allow(hotpath-throw): unreachable guard, documented ABI
        if (budget_ < -1'000'000) throw std::logic_error("corrupt budget");
        ++budget_;
    }
};
