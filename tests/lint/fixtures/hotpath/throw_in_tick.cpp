// Seeded violation: exception unwinding on the tick path. Contract
// violations in hot code use assert(); status returns carry recoverable
// errors.
#include <stdexcept>

using cycle_t = unsigned long long;

struct checked_port {
    int budget_ = 0;

    void tick(cycle_t) {
        if (budget_ < 0) throw std::runtime_error("negative budget");
    }
};
