// Fixture: a declaration named after a libc function (rule libc-shadow).
struct rng {
    explicit rng(unsigned long long) {}
    unsigned long long next() { return 4; }
};

unsigned long long draw(unsigned long long trial_seed) {
    rng rand(trial_seed);
    return rand.next();
}
