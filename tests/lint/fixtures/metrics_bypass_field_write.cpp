// Fixture: direct mutation of stat-counter struct fields -- the pre-obs
// public-field API. Both the compound-assignment and increment forms must
// be flagged as metrics-bypass.
struct client_stats {
    unsigned long long issued = 0;
    unsigned long long missed = 0;
};

struct client {
    void on_issue() { stats_.issued += 1; }
    void on_miss() { ++stats_.missed; }
    client_stats stats_;
};
