// Fixture: hand-rolled stat emission through a raw std::ostream -- stat
// values must leave through the obs exporters instead.
#include <iostream>

void dump_stats(unsigned long long n_completed) {
    std::cout << "completed," << n_completed << "\n";
}
