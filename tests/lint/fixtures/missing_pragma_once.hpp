// Fixture: classic ifndef guard instead of #pragma once
// (rule include-guard).
#ifndef BLUESCALE_FIXTURE_MISSING_PRAGMA_ONCE_HPP
#define BLUESCALE_FIXTURE_MISSING_PRAGMA_ONCE_HPP

inline int answer() { return 42; }

#endif
