// Fixture: chrono clocks are banned (rule nondet-source).
#include <chrono>

long long ticks() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
