// Fixture: environment reads are banned (rule nondet-source).
#include <cstdlib>

const char* lookup() { return getenv("BLUESCALE_MODE"); }
