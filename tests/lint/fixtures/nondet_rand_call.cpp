// Fixture: libc rand() is banned (rule nondet-source).
#include <cstdlib>

int noisy_value() { return std::rand() % 7; }
