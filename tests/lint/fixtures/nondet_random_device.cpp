// Fixture: hardware entropy is banned (rule nondet-source).
#include <random>

unsigned seed_from_hardware() {
    std::random_device dev;
    return dev();
}
