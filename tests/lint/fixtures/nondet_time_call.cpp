// Fixture: wall-clock time() is banned (rule nondet-source).
#include <ctime>

long stamp() { return time(nullptr); }
