// Fixture: cycle-step silenced inline.
#include <cstdint>

using cycle_t = std::uint64_t;

cycle_t schedule_retry(cycle_t now) {
    return now + 1; // detlint:allow(cycle-step): fixture only
}
