// Fixture: float/cycle mix silenced inline.
#include <cstdint>

using cycle_t = std::uint64_t;

cycle_t padded_deadline(cycle_t deadline) {
    return deadline * 1.5; // detlint:allow(float-cycle): fixture only
}
