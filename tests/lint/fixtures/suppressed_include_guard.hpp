// Fixture: missing guard silenced file-wide.
// detlint:allow-file(include-guard): generated-header fixture
inline int answer() { return 42; }
