// Fixture: libc shadowing silenced file-wide.
// detlint:allow-file(libc-shadow): fixture exercises file-wide allows
struct rng {
    explicit rng(unsigned long long) {}
    unsigned long long next() { return 4; }
};

unsigned long long draw(unsigned long long trial_seed) {
    rng rand(trial_seed);
    return rand.next();
}
