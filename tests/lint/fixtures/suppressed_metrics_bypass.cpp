// Fixture twin: the same raw-stream emission, blessed by an allow.
#include <iostream>

void dump_stats(unsigned long long n_completed) {
    std::cout << n_completed; // detlint:allow(metrics-bypass): debug aid
}
