// Fixture: same finding as nondet_rand_call.cpp, silenced by an
// annotated suppression.
#include <cstdlib>

int noisy_value() {
    return std::rand() % 7; // detlint:allow(nondet-source): fixture proves
                            // suppression works; never do this in src/
}
