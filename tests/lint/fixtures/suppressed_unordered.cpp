// Fixture: unordered iteration silenced with a justification comment on
// the preceding line.
#include <cstdint>
#include <unordered_map>

std::uint64_t total(const std::unordered_map<int, std::uint64_t>& by_id) {
    std::uint64_t sum = 0;
    std::unordered_map<int, std::uint64_t> tally = by_id;
    // detlint:allow(unordered-iter): sum is order-independent commutative
    for (const auto& [id, v] : tally) sum += v;
    return sum;
}
