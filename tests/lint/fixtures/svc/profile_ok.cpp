// Fixture: under a /svc/ path, a wall-clock read inside the body of a
// profile_* function is the sanctioned profile-mode boundary (rule
// nondet-source stays silent). Must produce zero findings.
#include <chrono>
#include <cstdint>

std::uint64_t profile_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}
