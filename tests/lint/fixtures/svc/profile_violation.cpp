// Fixture: the /svc/ sanction covers profile_* function bodies ONLY --
// a wall-clock read in any other function is still a nondet-source
// violation, even under a /svc/ path.
#include <chrono>
#include <cstdint>

std::uint64_t latch_deadline_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}
