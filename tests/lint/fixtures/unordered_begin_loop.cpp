// Fixture: explicit iterator walk of an unordered container
// (rule unordered-iter).
#include <unordered_set>

int first_or_zero(const std::unordered_set<int>& pool) {
    std::unordered_set<int> live = pool;
    auto it = live.begin();
    return it == live.end() ? 0 : *it;
}
