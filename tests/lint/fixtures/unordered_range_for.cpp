// Fixture: range-for over an unordered container (rule unordered-iter).
#include <cstdint>
#include <unordered_map>

std::uint64_t total(const std::unordered_map<int, std::uint64_t>& by_id) {
    std::uint64_t sum = 0;
    std::unordered_map<int, std::uint64_t> tally = by_id;
    for (const auto& [id, v] : tally) sum += v;
    return sum;
}
