// detlint's own test suite: every fixture under tests/lint/fixtures/
// violates exactly one rule and must be flagged with that rule id;
// the suppressed_* twins carry a detlint:allow and must scan clean.
// A second group drives the engine on in-memory sources to pin down the
// subtler contracts (cross-file member facts, suppression placement,
// rule filtering) that the fixtures can't express one file at a time.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "engine.hpp"
#include "sarif.hpp"

namespace {

using detlint::scan_options;
using detlint::scan_result;

std::string fixture(const std::string& name) {
    return std::string(DETLINT_FIXTURE_DIR) + "/" + name;
}

scan_result scan_fixture(const std::string& name) {
    return detlint::scan_files({fixture(name)}, scan_options{});
}

void expect_only_rule(const scan_result& r, const std::string& rule) {
    ASSERT_FALSE(r.findings.empty()) << "expected a " << rule << " finding";
    for (const auto& f : r.findings) {
        EXPECT_EQ(f.rule, rule) << f.path << ":" << f.line << " " << f.message;
        EXPECT_GT(f.line, 0u);
    }
    EXPECT_TRUE(r.suppressed.empty());
}

struct seeded_case {
    const char* file;
    const char* rule;
};

constexpr seeded_case k_seeded[] = {
    {"nondet_random_device.cpp", "nondet-source"},
    {"nondet_rand_call.cpp", "nondet-source"},
    {"nondet_time_call.cpp", "nondet-source"},
    {"nondet_chrono_clock.cpp", "nondet-source"},
    {"nondet_getenv.cpp", "nondet-source"},
    {"svc/profile_violation.cpp", "nondet-source"},
    {"unordered_range_for.cpp", "unordered-iter"},
    {"unordered_begin_loop.cpp", "unordered-iter"},
    {"float_cycle_mix.cpp", "float-cycle"},
    {"cycle_step_arith.cpp", "cycle-step"},
    {"libc_shadow_rand.cpp", "libc-shadow"},
    {"metrics_bypass_field_write.cpp", "metrics-bypass"},
    {"metrics_bypass_stream.cpp", "metrics-bypass"},
    {"missing_pragma_once.hpp", "include-guard"},
    {"hotpath/alloc_in_tick.cpp", "hotpath-alloc"},
    {"hotpath/lock_in_tick.cpp", "hotpath-lock"},
    {"hotpath/throw_in_tick.cpp", "hotpath-throw"},
    {"hotpath/io_in_tick.cpp", "hotpath-io"},
};

TEST(detlint_fixtures, each_seeded_violation_is_flagged_with_its_rule) {
    for (const auto& c : k_seeded) {
        SCOPED_TRACE(c.file);
        expect_only_rule(scan_fixture(c.file), c.rule);
    }
}

TEST(detlint_fixtures, allow_annotations_silence_each_rule) {
    const char* suppressed[] = {
        "suppressed_nondet.cpp",    "suppressed_unordered.cpp",
        "suppressed_float_cycle.cpp", "suppressed_cycle_step.cpp",
        "suppressed_libc_shadow.cpp",
        "suppressed_metrics_bypass.cpp", "suppressed_include_guard.hpp",
        "hotpath/suppressed_alloc.cpp", "hotpath/suppressed_lock.cpp",
        "hotpath/suppressed_throw.cpp", "hotpath/suppressed_io.cpp",
    };
    for (const auto* name : suppressed) {
        SCOPED_TRACE(name);
        const scan_result r = scan_fixture(name);
        EXPECT_TRUE(r.findings.empty())
            << r.findings.front().message << " (line "
            << r.findings.front().line << ")";
        EXPECT_FALSE(r.suppressed.empty())
            << "the seeded violation disappeared -- fixture is stale";
    }
}

TEST(detlint_fixtures, no_suppress_mode_reports_allowed_findings) {
    scan_options opts;
    opts.ignore_suppressions = true;
    const scan_result r =
        detlint::scan_files({fixture("suppressed_nondet.cpp")}, opts);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "nondet-source");
}

TEST(detlint_fixtures, clean_idiomatic_code_has_zero_findings) {
    const scan_result r = scan_fixture("clean.cpp");
    EXPECT_TRUE(r.findings.empty())
        << r.findings.front().rule << ": " << r.findings.front().message;
}

TEST(detlint_fixtures, reserve_then_index_tick_path_is_clean) {
    // The sanctioned hot-path shape: all growth in setup (never reachable
    // from the roots), only pre-sized access in tick -- no suppression
    // comment needed.
    const scan_result r = scan_fixture("hotpath/clean_reserved.cpp");
    EXPECT_TRUE(r.findings.empty())
        << r.findings.front().rule << ": " << r.findings.front().message;
    EXPECT_TRUE(r.suppressed.empty());
}

TEST(detlint_fixtures, svc_profile_bodies_may_read_the_wall_clock) {
    // The analysis service's profile-mode deadline boundary: under a
    // /svc/ path, wall-clock reads inside profile_* function bodies are
    // sanctioned without any suppression comment.
    const scan_result r = scan_fixture("svc/profile_ok.cpp");
    EXPECT_TRUE(r.findings.empty())
        << r.findings.front().rule << ": " << r.findings.front().message;
    EXPECT_TRUE(r.suppressed.empty());
}

TEST(detlint_fixtures, whole_directory_scan_is_deterministic) {
    const auto files =
        detlint::collect_files({std::string(DETLINT_FIXTURE_DIR)});
    ASSERT_GE(files.size(), 16u);
    EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
    const scan_result a = detlint::scan_files(files, scan_options{});
    const scan_result b = detlint::scan_files(files, scan_options{});
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].path, b.findings[i].path);
        EXPECT_EQ(a.findings[i].line, b.findings[i].line);
        EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
    }
}

// ---------------------------------------------------------------------------
// Engine contracts on in-memory sources

scan_result scan_two(const std::string& hpp, const std::string& cpp) {
    return detlint::scan_sources(
        {{"fake/widget.hpp", hpp}, {"fake/widget.cpp", cpp}},
        scan_options{});
}

TEST(detlint_engine, header_member_facts_reach_the_cpp) {
    // The live bug class this rule exists for: the member is declared
    // unordered in the header, the nondeterministic iteration sits in the
    // .cpp. Per-file analysis would miss it.
    const scan_result r = scan_two(
        "#pragma once\n"
        "#include <unordered_map>\n"
        "struct widget {\n"
        "    std::unordered_map<int, long> outstanding_;\n"
        "};\n",
        "#include \"widget.hpp\"\n"
        "long drain(widget& w) {\n"
        "    long sum = 0;\n"
        "    for (const auto& [k, v] : w.outstanding_) sum += v;\n"
        "    return sum;\n"
        "}\n");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "unordered-iter");
    EXPECT_EQ(r.findings.front().path, "fake/widget.cpp");
    EXPECT_EQ(r.findings.front().line, 4u);
}

TEST(detlint_engine, cycle_member_facts_reach_the_cpp) {
    const scan_result r = scan_two(
        "#pragma once\n"
        "using cycle_t = unsigned long long;\n"
        "struct widget { cycle_t horizon_ = 0; };\n",
        "#include \"widget.hpp\"\n"
        "void stretch(widget& w) { w.horizon_ = w.horizon_ * 1.25; }\n");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "float-cycle");
    EXPECT_EQ(r.findings.front().path, "fake/widget.cpp");
}

TEST(detlint_engine, generic_local_names_do_not_leak_across_files) {
    // `p` is double in one file and a cycle counter in another; neither
    // file mixes types internally, so neither may be flagged.
    const scan_result r = detlint::scan_sources(
        {{"fake/a.cpp", "double scale(double p) { return p * 2.0; }\n"},
         {"fake/b.cpp",
          "using cycle_t = unsigned long long;\n"
          "cycle_t twice(cycle_t p) { return p * 2; }\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty())
        << r.findings.front().message;
}

TEST(detlint_engine, static_cast_boundary_is_the_sanctioned_idiom) {
    const scan_result r = detlint::scan_sources(
        {{"fake/a.cpp",
          "using cycle_t = unsigned long long;\n"
          "double to_us(cycle_t n_cycles, double us_per_cycle) {\n"
          "    return static_cast<double>(n_cycles) * us_per_cycle;\n"
          "}\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(detlint_engine, analysis_and_hwcost_may_do_real_arithmetic) {
    const std::string body =
        "using cycle_t = unsigned long long;\n"
        "double sbf(cycle_t window) { return window * 0.5; }\n";
    const scan_result flagged = detlint::scan_sources(
        {{"src/sim/foo.cpp", body}}, scan_options{});
    ASSERT_EQ(flagged.findings.size(), 1u);
    EXPECT_EQ(flagged.findings.front().rule, "float-cycle");
    const scan_result exempt = detlint::scan_sources(
        {{"src/analysis/foo.cpp", body}, {"src/hwcost/bar.cpp", body}},
        scan_options{});
    EXPECT_TRUE(exempt.findings.empty());
}

TEST(detlint_engine, horizon_bodies_own_cycle_step_arithmetic) {
    // `now + k` is the horizon API's vocabulary: exempt inside
    // next_event()/wake_horizon() bodies (inline or out-of-line), flagged
    // anywhere else in component code.
    const scan_result r = detlint::scan_sources(
        {{"src/core/w.cpp",
          "using cycle_t = unsigned long long;\n"
          "struct w {\n"
          "    cycle_t next_event(cycle_t now) const { return now + 1; }\n"
          "    cycle_t retry_at(cycle_t now) const { return now + 4; }\n"
          "};\n"
          "cycle_t w_wake_horizon(cycle_t now);\n"
          "cycle_t wake_horizon(cycle_t now) { return now + 2; }\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "cycle-step");
    EXPECT_EQ(r.findings.front().line, 4u);
}

TEST(detlint_engine, sim_kernel_owns_the_wake_protocol) {
    // The simulator itself implements wake_at = max(now_ + 1, ...) -- the
    // rule stays out of src/sim/.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/step.cpp",
          "using cycle_t = unsigned long long;\n"
          "cycle_t bump(cycle_t now) { return now + 1; }\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(detlint_engine, profile_sanction_is_svc_scoped_and_body_scoped) {
    // The same profile_* body is sanctioned under src/svc/ and flagged
    // anywhere else; banned libc calls get the same treatment as the
    // chrono clock types.
    const std::string body =
        "#include <ctime>\n"
        "unsigned long profile_now_ns() {\n"
        "    struct timespec ts;\n"
        "    clock_gettime(0, &ts);\n"
        "    return static_cast<unsigned long>(ts.tv_nsec);\n"
        "}\n";
    const scan_result exempt = detlint::scan_sources(
        {{"src/svc/profile_clock.cpp", body}}, scan_options{});
    EXPECT_TRUE(exempt.findings.empty())
        << exempt.findings.front().message;
    const scan_result flagged = detlint::scan_sources(
        {{"src/core/profile_clock.cpp", body}}, scan_options{});
    ASSERT_EQ(flagged.findings.size(), 1u);
    EXPECT_EQ(flagged.findings.front().rule, "nondet-source");
    EXPECT_EQ(flagged.findings.front().line, 4u);
}

TEST(detlint_engine, rule_filter_restricts_the_run) {
    scan_options opts;
    opts.rules.insert("include-guard");
    const scan_result r = detlint::scan_files(
        {fixture("nondet_rand_call.cpp"), fixture("missing_pragma_once.hpp")},
        opts);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "include-guard");
}

TEST(detlint_engine, declarations_are_not_confused_with_calls) {
    // `rng rand(seed)` is a shadowing declaration, not a call to rand();
    // `std::rand()` is a call, not a declaration.
    const scan_result r = detlint::scan_sources(
        {{"fake/a.cpp",
          "struct rng { explicit rng(int) {} };\n"
          "void f(int seed) { rng rand(seed); }\n"
          "int g() { return std::rand(); }\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 2u);
    EXPECT_EQ(r.findings[0].line, 2u);
    EXPECT_EQ(r.findings[0].rule, "libc-shadow");
    EXPECT_EQ(r.findings[1].line, 3u);
    EXPECT_EQ(r.findings[1].rule, "nondet-source");
}

TEST(detlint_engine, member_access_is_not_a_libc_shadow) {
    const scan_result r = detlint::scan_sources(
        {{"fake/a.cpp",
          "struct stats { unsigned long completed; };\n"
          "unsigned long f(const stats& s) { return s.completed + 1; }\n"
          "struct cfg { double time_scale; };\n"
          "double g(const cfg& c) { return c.time_scale; }\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(detlint_engine, pragma_once_header_is_clean) {
    const scan_result r = detlint::scan_sources(
        {{"fake/a.hpp",
          "// leading comment is fine\n"
          "#pragma once\n"
          "#include <vector>\n"
          "inline int f() { return 1; }\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(detlint_engine, obs_and_stats_own_the_stream_exporters) {
    // The identical std::ostream emission is the sanctioned exporter
    // inside src/obs/ and src/stats/, and a metrics bypass anywhere else.
    const std::string body =
        "#include <ostream>\n"
        "void emit(std::ostream& os, unsigned long long n) { os << n; }\n";
    const scan_result exempt = detlint::scan_sources(
        {{"src/obs/exporter.cpp", body}, {"src/stats/writer.cpp", body}},
        scan_options{});
    EXPECT_TRUE(exempt.findings.empty())
        << exempt.findings.front().message;
    const scan_result flagged = detlint::scan_sources(
        {{"src/harness/report.cpp", body}}, scan_options{});
    ASSERT_EQ(flagged.findings.size(), 1u);
    EXPECT_EQ(flagged.findings.front().rule, "metrics-bypass");
    EXPECT_EQ(flagged.findings.front().line, 2u);
}

TEST(detlint_engine, stat_aggregation_into_locals_is_not_a_bypass) {
    // `out.retries += m.retries` merges trial results into a value-type
    // aggregate -- only member-style owners (`stats_`, `this->...`) hold
    // live counters, so only those writes are the old bypassing API.
    const scan_result r = detlint::scan_sources(
        {{"src/harness/agg.cpp",
          "struct trial { unsigned long long retries = 0; };\n"
          "trial sum(const trial& m) {\n"
          "    trial out;\n"
          "    out.retries += m.retries;\n"
          "    return out;\n"
          "}\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(detlint_engine, this_qualified_stat_writes_are_flagged) {
    const scan_result r = detlint::scan_sources(
        {{"src/core/widget.cpp",
          "struct widget {\n"
          "    unsigned long long serviced = 0;\n"
          "    void f() { this->serviced += 1; }\n"
          "};\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "metrics-bypass");
    EXPECT_EQ(r.findings.front().line, 3u);
}

TEST(detlint_engine, suppression_must_name_the_right_rule) {
    // An allow for a different rule does not silence the finding.
    const scan_result r = detlint::scan_sources(
        {{"fake/a.cpp",
          "#include <cstdlib>\n"
          "int f() { return std::rand(); } // detlint:allow(float-cycle)\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "nondet-source");
}

// ---------------------------------------------------------------------------
// Call-graph contracts (the hotpath-* gate)

TEST(detlint_callgraph, reachability_flows_through_helpers) {
    // The violation sits one hop from the root: tick -> stash.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "#include <vector>\n"
          "struct port {\n"
          "    std::vector<int> q_;\n"
          "    void stash(int v) { q_.push_back(v); }\n"
          "    void tick(unsigned long long) { stash(1); }\n"
          "};\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "hotpath-alloc");
    EXPECT_EQ(r.findings.front().line, 4u);
    // Provenance names both the intermediate hop and the root.
    EXPECT_NE(r.findings.front().message.find("'tick'"),
              std::string::npos)
        << r.findings.front().message;
}

TEST(detlint_callgraph, cold_code_is_not_checked) {
    // setup() is unreachable from any root: its growth is the sanctioned
    // assembly-time idiom and needs no suppression.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "#include <vector>\n"
          "struct port {\n"
          "    std::vector<int> q_;\n"
          "    void setup() { q_.push_back(0); }\n"
          "    void tick(unsigned long long) {}\n"
          "};\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(detlint_callgraph, member_calls_do_not_reach_free_functions) {
    // s_.flush() resolves among member definitions only; the free
    // flush() and its allocation stay cold.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "#include <vector>\n"
          "std::vector<int> g;\n"
          "void flush() { g.push_back(1); }\n"
          "struct sink { void flush() {} };\n"
          "struct port {\n"
          "    sink s_;\n"
          "    void tick(unsigned long long) { s_.flush(); }\n"
          "};\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(detlint_callgraph, overloads_are_marked_conservatively) {
    // Token-level resolution cannot pick an overload: every definition
    // of the called name becomes hot, so both sites are flagged.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "#include <vector>\n"
          "struct port {\n"
          "    std::vector<int> q_;\n"
          "    void put(int v) { q_.push_back(v); }\n"
          "    void put(int v, int w) { q_.push_back(v + w); }\n"
          "    void tick(unsigned long long) { put(1); }\n"
          "};\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 2u);
    EXPECT_EQ(r.findings[0].rule, "hotpath-alloc");
    EXPECT_EQ(r.findings[0].line, 4u);
    EXPECT_EQ(r.findings[1].rule, "hotpath-alloc");
    EXPECT_EQ(r.findings[1].line, 5u);
}

TEST(detlint_callgraph, lambda_bodies_inside_tick_are_hot) {
    // A lambda's tokens sit inside the enclosing body range, so hot-path
    // discipline applies to it without any extra graph machinery.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "#include <vector>\n"
          "struct port {\n"
          "    std::vector<int> q_;\n"
          "    void tick(unsigned long long) {\n"
          "        auto push = [&](int v) { q_.push_back(v); };\n"
          "        push(7);\n"
          "    }\n"
          "};\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "hotpath-alloc");
    EXPECT_EQ(r.findings.front().line, 5u);
}

TEST(detlint_callgraph, address_taken_functions_become_hot) {
    // &drain escapes into a function pointer a tick body installs: the
    // target must be treated as callable from the hot path.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "#include <vector>\n"
          "std::vector<int> g;\n"
          "void drain() { g.push_back(1); }\n"
          "struct port {\n"
          "    void (*fn_)() = nullptr;\n"
          "    void tick(unsigned long long) { fn_ = &drain; }\n"
          "};\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "hotpath-alloc");
    EXPECT_EQ(r.findings.front().line, 3u);
}

TEST(detlint_callgraph, explicit_template_calls_resolve) {
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "#include <vector>\n"
          "struct port {\n"
          "    std::vector<int> q_;\n"
          "    template <typename T>\n"
          "    void put(T v) { q_.push_back(static_cast<int>(v)); }\n"
          "    void tick(unsigned long long) { put<long>(5); }\n"
          "};\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "hotpath-alloc");
    EXPECT_EQ(r.findings.front().line, 5u);
}

TEST(detlint_callgraph, recursive_cycles_terminate) {
    // Mutual recursion reachable from tick: the hot flag doubles as the
    // BFS visited set, so marking terminates and the site is flagged.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "#include <vector>\n"
          "struct port {\n"
          "    std::vector<int> q_;\n"
          "    void ping(int n);\n"
          "    void pong(int n) { if (n > 0) ping(n - 1); q_.push_back(n); }\n"
          "    void tick(unsigned long long) { ping(3); }\n"
          "};\n"
          "void port::ping(int n) { if (n > 0) pong(n - 1); }\n"}},
        scan_options{});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings.front().rule, "hotpath-alloc");
    EXPECT_EQ(r.findings.front().line, 5u);
}

TEST(detlint_callgraph, commit_roots_require_a_clocked_class) {
    // A control-plane transaction commit (class without tick) is not a
    // clock edge; the same name in a ticking component is.
    const std::string cold =
        "#include <vector>\n"
        "struct txn {\n"
        "    std::vector<int> log_;\n"
        "    void commit() { log_.push_back(1); }\n"
        "};\n";
    const scan_result not_root = detlint::scan_sources(
        {{"src/core/txn.cpp", cold}}, scan_options{});
    EXPECT_TRUE(not_root.findings.empty())
        << not_root.findings.front().message;
    const std::string clocked =
        "#include <vector>\n"
        "struct dev {\n"
        "    std::vector<int> log_;\n"
        "    void tick(unsigned long long) {}\n"
        "    void commit() { log_.push_back(1); }\n"
        "};\n";
    const scan_result root = detlint::scan_sources(
        {{"src/core/dev.cpp", clocked}}, scan_options{});
    ASSERT_EQ(root.findings.size(), 1u);
    EXPECT_EQ(root.findings.front().rule, "hotpath-alloc");
    EXPECT_EQ(root.findings.front().line, 5u);
}

TEST(detlint_callgraph, sanctioned_boundaries_stop_propagation) {
    // Analysis code runs at admission time by design: an edge from a hot
    // tick into src/analysis/ does not drag that tree into the hot set.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "void record(int v);\n"
          "struct port { void tick(unsigned long long) { record(1); } };\n"},
         {"src/analysis/b.cpp",
          "#include <vector>\n"
          "std::vector<int> g;\n"
          "void record(int v) { g.push_back(v); }\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(detlint_callgraph, std_qualified_calls_stay_external) {
    // std::sort never names project code, even when a project function
    // shares the name.
    const scan_result r = detlint::scan_sources(
        {{"src/sim/a.cpp",
          "#include <algorithm>\n"
          "#include <vector>\n"
          "std::vector<int> g;\n"
          "void sort() { g.push_back(1); }\n"
          "struct port {\n"
          "    int a_[4] = {3, 1, 2, 0};\n"
          "    void tick(unsigned long long) { std::sort(a_, a_ + 4); }\n"
          "};\n"}},
        scan_options{});
    EXPECT_TRUE(r.findings.empty()) << r.findings.front().message;
}

TEST(detlint_callgraph, queue_methods_are_roots_only_on_queue_classes) {
    // push() on an arbitrary class is not a root; the bounded queue
    // classes' push() is (components call it mid-tick).
    const std::string body =
        "#include <vector>\n"
        "struct CLASSNAME {\n"
        "    std::vector<int> q_;\n"
        "    void push(int v) { q_.push_back(v); }\n"
        "};\n";
    std::string plain = body;
    plain.replace(plain.find("CLASSNAME"), 9, "mailbox");
    const scan_result cold = detlint::scan_sources(
        {{"src/sim/mailbox.cpp", plain}}, scan_options{});
    EXPECT_TRUE(cold.findings.empty()) << cold.findings.front().message;
    std::string queue = body;
    queue.replace(queue.find("CLASSNAME"), 9, "latched_queue");
    const scan_result hot = detlint::scan_sources(
        {{"src/sim/lq.cpp", queue}}, scan_options{});
    ASSERT_EQ(hot.findings.size(), 1u);
    EXPECT_EQ(hot.findings.front().rule, "hotpath-alloc");
    EXPECT_EQ(hot.findings.front().line, 4u);
}

// ---------------------------------------------------------------------------
// SARIF emission

TEST(detlint_sarif, report_carries_rule_location_and_schema) {
    const std::vector<detlint::finding> fs = {
        {"/repo/src/sim/a.cpp", 12, "hotpath-alloc",
         "growable-container 'push_back' inside hot function 'tick'"}};
    std::ostringstream out;
    detlint::write_sarif(out, fs, "/repo");
    const std::string s = out.str();
    EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"detlint\""), std::string::npos);
    EXPECT_NE(s.find("\"ruleId\": \"hotpath-alloc\""), std::string::npos);
    // Repo-relative URI: required for code-scanning PR annotations.
    EXPECT_NE(s.find("\"uri\": \"src/sim/a.cpp\""), std::string::npos);
    EXPECT_NE(s.find("\"startLine\": 12"), std::string::npos);
    // The rule catalogue rides along so annotations have descriptions.
    for (const auto& rule : detlint::all_rules()) {
        EXPECT_NE(s.find("\"id\": \"" + std::string(rule.id) + "\""),
                  std::string::npos)
            << rule.id;
    }
}

TEST(detlint_sarif, empty_findings_still_produce_a_valid_run) {
    std::ostringstream out;
    detlint::write_sarif(out, {}, "");
    const std::string s = out.str();
    EXPECT_NE(s.find("\"results\": ["), std::string::npos);
    EXPECT_NE(s.find("$schema"), std::string::npos);
}

} // namespace
