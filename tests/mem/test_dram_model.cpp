#include <gtest/gtest.h>

#include "mem/dram_model.hpp"

namespace bluescale {
namespace {

mem_request read_at(std::uint64_t addr) {
    mem_request r;
    r.addr = addr;
    r.op = mem_op::read;
    return r;
}

mem_request write_at(std::uint64_t addr) {
    mem_request r;
    r.addr = addr;
    r.op = mem_op::write;
    return r;
}

TEST(dram_model, banks_interleave_at_line_granularity) {
    dram_timing t;
    t.n_banks = 8;
    t.bank_interleave_bytes = 64;
    dram_model d(t);
    for (std::uint64_t line = 0; line < 16; ++line) {
        EXPECT_EQ(d.bank_of(line * 64), line % 8);
    }
}

TEST(dram_model, rows_span_all_banks) {
    dram_timing t;
    dram_model d(t);
    const std::uint64_t row_span = t.row_bytes * t.n_banks;
    EXPECT_EQ(d.row_of(0), 0u);
    EXPECT_EQ(d.row_of(row_span - 1), 0u);
    EXPECT_EQ(d.row_of(row_span), 1u);
}

TEST(dram_model, first_access_is_closed_bank) {
    dram_model d;
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::closed);
}

TEST(dram_model, second_access_same_row_hits) {
    dram_model d;
    d.access(read_at(0));
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::hit);
}

TEST(dram_model, different_row_same_bank_conflicts) {
    dram_timing t;
    dram_model d(t);
    const std::uint64_t row_span = t.row_bytes * t.n_banks;
    d.access(read_at(0));
    EXPECT_EQ(d.classify(read_at(row_span)), row_outcome::conflict);
}

TEST(dram_model, sequential_lines_hit_after_warmup) {
    // Line-interleaved mapping: sequential lines rotate across banks but
    // stay in the same row per bank -> all hits after one pass.
    dram_timing t;
    dram_model d(t);
    for (std::uint64_t line = 0; line < t.n_banks; ++line) {
        d.access(read_at(line * 64));
    }
    for (std::uint64_t line = t.n_banks; line < 4 * t.n_banks; ++line) {
        EXPECT_EQ(d.classify(read_at(line * 64)), row_outcome::hit);
        d.access(read_at(line * 64));
    }
}

TEST(dram_model, latency_ordering_hit_closed_conflict) {
    dram_timing t;
    dram_model d(t);
    const std::uint64_t row_span = t.row_bytes * t.n_banks;
    const auto closed_lat = d.access_latency(read_at(0));
    d.access(read_at(0));
    const auto hit_lat = d.access_latency(read_at(0));
    const auto conflict_lat = d.access_latency(read_at(row_span));
    EXPECT_LT(hit_lat, closed_lat);
    EXPECT_LT(closed_lat, conflict_lat);
}

TEST(dram_model, latency_values_match_timing) {
    dram_timing t;
    dram_model d(t);
    EXPECT_EQ(d.access_latency(read_at(0)),
              t.t_cas + t.t_burst + t.t_rcd); // closed
    d.access(read_at(0));
    EXPECT_EQ(d.access_latency(read_at(0)), t.t_cas + t.t_burst); // hit
    EXPECT_EQ(d.access_latency(read_at(t.row_bytes * t.n_banks)),
              t.t_cas + t.t_burst + t.t_rp + t.t_rcd); // conflict
}

TEST(dram_model, writes_pay_recovery_surcharge) {
    dram_timing t;
    dram_model d(t);
    EXPECT_EQ(d.access_latency(write_at(0)) - d.access_latency(read_at(0)),
              t.t_wr_extra);
}

TEST(dram_model, access_updates_open_row) {
    dram_timing t;
    dram_model d(t);
    const std::uint64_t row_span = t.row_bytes * t.n_banks;
    d.access(read_at(0));
    d.access(read_at(row_span)); // conflict, replaces open row
    EXPECT_EQ(d.classify(read_at(row_span)), row_outcome::hit);
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::conflict);
}

TEST(dram_model, hit_miss_counters) {
    dram_model d;
    d.access(read_at(0)); // miss (closed)
    d.access(read_at(0)); // hit
    d.access(read_at(0)); // hit
    EXPECT_EQ(d.hits(), 2u);
    EXPECT_EQ(d.misses(), 1u);
}

TEST(dram_model, reset_closes_rows_and_clears_counters) {
    dram_model d;
    d.access(read_at(0));
    d.access(read_at(0));
    d.reset();
    EXPECT_EQ(d.hits(), 0u);
    EXPECT_EQ(d.misses(), 0u);
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::closed);
}

TEST(dram_model, independent_bank_state) {
    dram_timing t;
    dram_model d(t);
    d.access(read_at(0));   // bank 0
    d.access(read_at(64));  // bank 1
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::hit);
    EXPECT_EQ(d.classify(read_at(64)), row_outcome::hit);
}

TEST(dram_model, refresh_close_charges_conflict_on_next_access) {
    // hit -> refresh -> miss: the refresh issued the precharge that
    // evicted the row, so the first post-refresh access pays the full
    // conflict path, not the cheaper idle-bank activate.
    dram_timing t;
    dram_model d(t);
    d.access(read_at(0));
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::hit);
    d.close_row(d.bank_of(0));
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::conflict);
    EXPECT_EQ(d.access_latency(read_at(0)),
              t.t_cas + t.t_burst + t.t_rp + t.t_rcd);
    d.access(read_at(0));
    // The penalty is one-shot: the reopened row hits again.
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::hit);
}

TEST(dram_model, close_all_rows_penalizes_every_bank) {
    dram_timing t;
    dram_model d(t);
    d.access(read_at(0));  // bank 0
    d.access(read_at(64)); // bank 1
    d.close_all_rows();
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::conflict);
    EXPECT_EQ(d.classify(read_at(64)), row_outcome::conflict);
    // Bank 2 was never touched but refresh precharges it all the same.
    EXPECT_EQ(d.classify(read_at(128)), row_outcome::conflict);
}

TEST(dram_model, reset_clears_refresh_penalty) {
    dram_model d;
    d.access(read_at(0));
    d.close_all_rows();
    d.reset();
    // A fresh trial starts with idle banks, not refresh-penalized ones.
    EXPECT_EQ(d.classify(read_at(0)), row_outcome::closed);
}

} // namespace
} // namespace bluescale
