#include <gtest/gtest.h>

#include "mem/maintenance_engine.hpp"
#include "mem/memory_controller.hpp"

namespace bluescale {
namespace {

dram_timing refresh_timing(std::uint32_t t_refi, std::uint32_t t_rfc) {
    dram_timing t;
    t.t_refi = t_refi;
    t.t_rfc = t_rfc;
    return t;
}

mem_request req_at(std::uint64_t addr) {
    mem_request r;
    r.id = 1;
    r.addr = addr;
    r.abs_deadline = 1'000'000;
    r.level_deadline = 1'000'000;
    return r;
}

TEST(maintenance_engine, refresh_staggers_bank_phases) {
    dram_model d(refresh_timing(800, 40));
    maintenance_engine eng(d, {});
    // Bank b's first window starts at (b+1)*t_refi/n_banks: bank 0 at
    // 100, bank 7 at 800 (the classic all-banks cadence).
    eng.advance(99);
    EXPECT_EQ(eng.refreshes(), 0u);
    eng.advance(100);
    EXPECT_EQ(eng.refreshes(), 1u);
    EXPECT_TRUE(eng.bank_blocked(0, 100));
    EXPECT_TRUE(eng.bank_blocked(0, 139));
    EXPECT_FALSE(eng.bank_blocked(0, 140));
    EXPECT_FALSE(eng.bank_blocked(1, 100)); // bank 1's window is at 200
    eng.advance(800);
    EXPECT_EQ(eng.refreshes(), 8u); // every bank refreshed once
    EXPECT_EQ(eng.stolen_cycles(), 8u * 40u);
}

TEST(maintenance_engine, closed_form_catchup_matches_per_cycle) {
    // Sleeping across many windows and catching up in one advance() must
    // land on the same counters and blocked state as ticking every cycle.
    dram_model d1(refresh_timing(100, 10));
    dram_model d2(refresh_timing(100, 10));
    maintenance_config cfg;
    cfg.scrub_interval = 37;
    cfg.scrub_duration = 4;
    maintenance_engine stepped(d1, cfg);
    maintenance_engine jumped(d2, cfg);
    for (cycle_t now = 0; now <= 1000; ++now) stepped.advance(now);
    jumped.advance(1000);
    EXPECT_EQ(stepped.refreshes(), jumped.refreshes());
    EXPECT_EQ(stepped.scrubs(), jumped.scrubs());
    EXPECT_EQ(stepped.stolen_cycles(), jumped.stolen_cycles());
    for (std::uint32_t b = 0; b < 8; ++b) {
        EXPECT_EQ(stepped.bank_blocked(b, 1000), jumped.bank_blocked(b, 1000));
    }
}

TEST(maintenance_engine, scrub_sweeps_banks_round_robin) {
    dram_model d{dram_timing{}}; // refresh off
    maintenance_config cfg;
    cfg.scrub_interval = 20;
    cfg.scrub_duration = 5;
    maintenance_engine eng(d, cfg);
    eng.advance(20);
    EXPECT_EQ(eng.scrubs(), 1u);
    EXPECT_TRUE(eng.bank_blocked(0, 22));
    EXPECT_FALSE(eng.bank_blocked(1, 22));
    eng.advance(40);
    EXPECT_EQ(eng.scrubs(), 2u);
    EXPECT_TRUE(eng.bank_blocked(1, 42)); // round robin moved on
    EXPECT_FALSE(eng.bank_blocked(0, 42));
    EXPECT_EQ(eng.stolen_cycles(), 10u);
}

TEST(maintenance_engine, hammer_mitigation_after_threshold_activations) {
    dram_model d{dram_timing{}};
    maintenance_config cfg;
    cfg.hammer_threshold = 4;
    cfg.hammer_mitigation_cycles = 30;
    maintenance_engine eng(d, cfg);
    d.access(req_at(0)); // open bank 0's row
    for (int i = 0; i < 3; ++i) eng.on_activation(0, 10);
    EXPECT_EQ(eng.hammer_mitigations(), 0u);
    EXPECT_FALSE(eng.bank_blocked(0, 10));
    eng.on_activation(0, 10); // 4th activation crosses the threshold
    EXPECT_EQ(eng.hammer_mitigations(), 1u);
    // The mitigation queues behind the triggering access...
    EXPECT_TRUE(eng.bank_blocked(0, 39));
    EXPECT_FALSE(eng.bank_blocked(0, 40));
    // ...and evicts the aggressor row with the conflict penalty.
    EXPECT_EQ(d.classify(req_at(0)), row_outcome::conflict);
    // Counter restarts: 4 more activations to the next mitigation.
    for (int i = 0; i < 3; ++i) eng.on_activation(0, 50);
    EXPECT_EQ(eng.hammer_mitigations(), 1u);
    eng.on_activation(0, 50);
    EXPECT_EQ(eng.hammer_mitigations(), 2u);
}

TEST(maintenance_engine, next_boundary_reports_earliest_window) {
    dram_model d(refresh_timing(800, 40));
    maintenance_config cfg;
    cfg.scrub_interval = 350;
    cfg.scrub_duration = 8;
    maintenance_engine eng(d, cfg);
    eng.advance(0);
    EXPECT_EQ(eng.next_boundary(0), 100u); // bank 0's first refresh
    eng.advance(100);
    EXPECT_EQ(eng.next_boundary(100), 200u); // bank 1
    eng.advance(320);
    EXPECT_EQ(eng.next_boundary(320), 350u); // scrub before bank 3 at 400
}

TEST(maintenance_engine, storm_blocks_every_bank) {
    dram_model d{dram_timing{}};
    maintenance_engine eng(d, {});
    d.access(req_at(0));
    eng.inject_storms(
        {{sim::fault_kind::maintenance_storm, 0, /*start=*/50,
          /*duration=*/20}});
    eng.advance(10);
    EXPECT_FALSE(eng.bank_blocked(0, 10));
    EXPECT_EQ(eng.next_boundary(10), 50u);
    for (cycle_t now = 11; now < 70; ++now) eng.advance(now);
    EXPECT_EQ(eng.storm_cycles(), 20u);
    // Storm entry evicted the open row.
    EXPECT_EQ(d.classify(req_at(0)), row_outcome::conflict);
    eng.advance(70);
    EXPECT_FALSE(eng.bank_blocked(0, 70));
    // Modeled-maintenance counters are untouched by the storm.
    EXPECT_EQ(eng.refreshes(), 0u);
    EXPECT_EQ(eng.scrubs(), 0u);
    EXPECT_EQ(eng.stolen_cycles(), 0u);
}

TEST(maintenance_engine, reset_rewinds_schedules_and_counters) {
    dram_model d(refresh_timing(100, 10));
    maintenance_config cfg;
    cfg.scrub_interval = 40;
    cfg.scrub_duration = 4;
    cfg.hammer_threshold = 2;
    cfg.hammer_mitigation_cycles = 10;
    maintenance_engine eng(d, cfg);
    eng.advance(500);
    eng.on_activation(0, 500);
    eng.on_activation(0, 500);
    ASSERT_GT(eng.refreshes(), 0u);
    ASSERT_GT(eng.scrubs(), 0u);
    ASSERT_EQ(eng.hammer_mitigations(), 1u);
    eng.reset();
    EXPECT_EQ(eng.refreshes(), 0u);
    EXPECT_EQ(eng.scrubs(), 0u);
    EXPECT_EQ(eng.hammer_mitigations(), 0u);
    EXPECT_EQ(eng.stolen_cycles(), 0u);
    for (std::uint32_t b = 0; b < 8; ++b) {
        EXPECT_FALSE(eng.bank_blocked(b, 0));
    }
    // The schedule rewound: bank 0's first window is ahead again.
    EXPECT_EQ(eng.next_boundary(0), 100u / 8u);
}

TEST(maintenance_engine, controller_keeps_accepting_through_storm) {
    // A maintenance storm blocks the banks, not the queue: unlike a
    // backpressure storm, can_accept() stays true while service stalls.
    memctrl_config cfg;
    memory_controller mc(cfg);
    mc.inject_campaign(sim::fault_campaign(std::vector<sim::fault_event>{
        {sim::fault_kind::maintenance_storm, 0, /*start=*/8,
         /*duration=*/40}}));
    request_id_t id = 0;
    std::uint64_t serviced_during_storm = 0;
    for (cycle_t now = 0; now < 120; ++now) {
        EXPECT_TRUE(mc.can_accept() || mc.config().request_queue_depth == 0 ||
                    !mc.can_accept()); // queue-full is the only refusal
        while (mc.can_accept()) mc.push(req_at(id++ * 64));
        const auto before = mc.serviced();
        mc.tick(now);
        while (mc.has_response()) mc.pop_response();
        mc.commit();
        if (now >= 12 && now < 48) {
            serviced_during_storm += mc.serviced() - before;
        }
    }
    // In-flight transactions may retire early in the window, but nothing
    // new is serviced deep inside it.
    EXPECT_LE(serviced_during_storm, 3u);
    EXPECT_EQ(mc.maintenance().storm_cycles(), 40u);
    EXPECT_GT(mc.serviced(), 10u); // service resumed after the storm
}

TEST(maintenance_engine, to_maintenance_model_converts_conservatively) {
    memctrl_config cfg;
    cfg.initiation_interval = 4;
    cfg.timing.t_refi = 800;
    cfg.timing.t_rfc = 41; // not a multiple of the unit: cost must ceil
    cfg.maintenance.scrub_interval = 400;
    cfg.maintenance.scrub_duration = 8;
    cfg.maintenance.hammer_threshold = 16;
    cfg.maintenance.hammer_mitigation_cycles = 30;
    const analysis::maintenance_model m = to_maintenance_model(cfg);
    ASSERT_EQ(m.ops.size(), 3u);
    EXPECT_EQ(m.ops[0].period, 200u); // refresh: 800 / 4
    EXPECT_EQ(m.ops[0].cost, 11u);    // ceil(41 / 4)
    // Scrub returns to a given bank every interval * n_banks.
    EXPECT_EQ(m.ops[1].period, 400u * 8u / 4u);
    EXPECT_EQ(m.ops[1].cost, 2u);
    // Hammer threshold is already in units (one activation per start).
    EXPECT_EQ(m.ops[2].period, 16u);
    EXPECT_EQ(m.ops[2].cost, 8u); // ceil(30 / 4)
}

TEST(maintenance_engine, to_maintenance_model_empty_when_disabled) {
    EXPECT_TRUE(to_maintenance_model(memctrl_config{}).empty());
}

} // namespace
} // namespace bluescale
