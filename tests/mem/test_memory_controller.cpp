#include <gtest/gtest.h>

#include <vector>

#include "mem/memory_controller.hpp"

namespace bluescale {
namespace {

mem_request make_req(request_id_t id, std::uint64_t addr,
                     cycle_t deadline = 1'000'000) {
    mem_request r;
    r.id = id;
    r.addr = addr;
    r.abs_deadline = deadline;
    r.level_deadline = deadline;
    return r;
}

/// Drives the controller standalone for `cycles`, collecting responses.
std::vector<mem_request> drain(memory_controller& mc, cycle_t cycles,
                               cycle_t start = 0) {
    std::vector<mem_request> out;
    for (cycle_t now = start; now < start + cycles; ++now) {
        mc.tick(now);
        while (mc.has_response()) out.push_back(mc.pop_response());
        mc.commit();
    }
    return out;
}

TEST(memory_controller, services_single_request) {
    memory_controller mc;
    mc.push(make_req(1, 0));
    const auto done = drain(mc, 100);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].id, 1u);
    EXPECT_EQ(mc.serviced(), 1u);
    EXPECT_TRUE(mc.idle());
}

TEST(memory_controller, stamps_service_times) {
    memory_controller mc;
    mc.push(make_req(1, 0));
    const auto done = drain(mc, 100);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_GT(done[0].mem_done, done[0].mem_start);
}

TEST(memory_controller, respects_initiation_interval) {
    memctrl_config cfg;
    cfg.initiation_interval = 4;
    memory_controller mc(cfg);
    // Two requests to different banks: starts must be >= 4 cycles apart.
    mc.push(make_req(1, 0));
    mc.push(make_req(2, 64));
    const auto done = drain(mc, 100);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_GE(done[1].mem_start, done[0].mem_start + 4);
}

TEST(memory_controller, fcfs_preserves_order) {
    memctrl_config cfg;
    cfg.policy = memctrl_policy::fcfs;
    memory_controller mc(cfg);
    for (request_id_t i = 0; i < 5; ++i) {
        mc.push(make_req(i, i * 64));
    }
    const auto done = drain(mc, 300);
    ASSERT_EQ(done.size(), 5u);
    for (request_id_t i = 0; i < 5; ++i) EXPECT_EQ(done[i].id, i);
}

TEST(memory_controller, fr_fcfs_prefers_row_hit) {
    memctrl_config cfg;
    cfg.policy = memctrl_policy::fr_fcfs;
    cfg.timing.n_banks = 2;
    memory_controller mc(cfg);
    const std::uint64_t row_span =
        cfg.timing.row_bytes * cfg.timing.n_banks;

    // Open bank 0 row 0.
    mc.push(make_req(0, 0));
    drain(mc, 50);

    // Conflict (row 1 of bank 0) queued ahead of a row hit (row 0).
    mc.push(make_req(1, row_span));
    mc.push(make_req(2, 0));
    const auto done = drain(mc, 200, 50);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].id, 2u) << "row hit should be served first";
    EXPECT_EQ(done[1].id, 1u);
}

TEST(memory_controller, fr_fcfs_bypass_cap_prevents_starvation) {
    memctrl_config cfg;
    cfg.policy = memctrl_policy::fr_fcfs;
    cfg.fr_fcfs_bypass_cap = 2;
    cfg.timing.n_banks = 2;
    cfg.request_queue_depth = 32;
    memory_controller mc(cfg);
    const std::uint64_t row_span =
        cfg.timing.row_bytes * cfg.timing.n_banks;

    // Open bank 0 row 0.
    mc.push(make_req(100, 0));
    drain(mc, 50);

    // One conflicting head + many row hits behind it.
    mc.push(make_req(0, row_span)); // head, conflicts
    for (request_id_t i = 1; i <= 10; ++i) mc.push(make_req(i, 0));
    const auto done = drain(mc, 600, 50);
    ASSERT_EQ(done.size(), 11u);
    // The head must be served after at most fr_fcfs_bypass_cap bypasses.
    std::size_t head_pos = 99;
    for (std::size_t i = 0; i < done.size(); ++i) {
        if (done[i].id == 0) head_pos = i;
    }
    EXPECT_LE(head_pos, 2u);
}

TEST(memory_controller, saturated_throughput_matches_interval) {
    memctrl_config cfg;
    cfg.initiation_interval = 4;
    memory_controller mc(cfg);
    std::uint64_t pushed = 0;
    cycle_t now = 0;
    for (; now < 4000; ++now) {
        while (mc.can_accept()) {
            mc.push(make_req(pushed, pushed * 64));
            ++pushed;
        }
        mc.tick(now);
        while (mc.has_response()) mc.pop_response();
        mc.commit();
    }
    // Allow warmup slack; steady state is one start per interval.
    EXPECT_GE(mc.serviced(), 4000u / 4 - 20);
}

TEST(memory_controller, backpressure_when_queue_full) {
    memctrl_config cfg;
    cfg.request_queue_depth = 2;
    memory_controller mc(cfg);
    EXPECT_TRUE(mc.can_accept());
    mc.push(make_req(0, 0));
    mc.push(make_req(1, 64));
    EXPECT_FALSE(mc.can_accept());
}

TEST(memory_controller, response_backpressure_stalls_retirement) {
    memctrl_config cfg;
    cfg.response_queue_depth = 1;
    memory_controller mc(cfg);
    mc.push(make_req(0, 0));
    mc.push(make_req(1, 64));
    mc.push(make_req(2, 128));
    // Never pop responses: retirement must stall, not drop.
    for (cycle_t now = 0; now < 200; ++now) {
        mc.tick(now);
        mc.commit();
    }
    std::uint64_t drained = 0;
    for (cycle_t now = 200; now < 400; ++now) {
        mc.tick(now);
        while (mc.has_response()) {
            mc.pop_response();
            ++drained;
        }
        mc.commit();
    }
    EXPECT_EQ(drained, 3u);
}

TEST(memory_controller, charges_blocking_to_earlier_deadline_waiters) {
    memctrl_config cfg;
    cfg.policy = memctrl_policy::fcfs;
    memory_controller mc(cfg);
    // Head has a LATER deadline than the second request: when the head is
    // served, the second is blocked by lower-priority work.
    mc.push(make_req(0, 0, /*deadline=*/1000));
    mc.push(make_req(1, 64, /*deadline=*/10));
    const auto done = drain(mc, 200);
    ASSERT_EQ(done.size(), 2u);
    const auto& late = done[0].id == 1 ? done[0] : done[1];
    EXPECT_GT(late.blocked_cycles, 0u);
}

TEST(memory_controller, no_blocking_charge_for_later_deadline_waiters) {
    memctrl_config cfg;
    cfg.policy = memctrl_policy::fcfs;
    memory_controller mc(cfg);
    mc.push(make_req(0, 0, /*deadline=*/10));
    mc.push(make_req(1, 64, /*deadline=*/1000));
    const auto done = drain(mc, 200);
    ASSERT_EQ(done.size(), 2u);
    for (const auto& r : done) EXPECT_EQ(r.blocked_cycles, 0u);
}

TEST(memory_controller, reset_clears_everything) {
    memory_controller mc;
    mc.push(make_req(0, 0));
    mc.push(make_req(1, 64));
    drain(mc, 10);
    mc.reset();
    EXPECT_TRUE(mc.idle());
    EXPECT_EQ(mc.serviced(), 0u);
    EXPECT_FALSE(mc.has_response());
    EXPECT_TRUE(mc.can_accept());
}

TEST(memory_controller, refresh_blocks_starts_during_bank_window) {
    memctrl_config cfg;
    cfg.timing.t_refi = 100;
    cfg.timing.t_rfc = 40;
    memory_controller mc(cfg);
    // Pin every request to bank 0 (addr stride = interleave * n_banks):
    // per-bank staggered refresh gives bank 0 the window
    // [t_refi/8 + 100k, t_refi/8 + 40 + 100k).
    const cycle_t phase = cfg.timing.t_refi / cfg.timing.n_banks;
    request_id_t id = 0;
    std::vector<cycle_t> starts;
    for (cycle_t now = 0; now < 800; ++now) {
        while (mc.can_accept()) mc.push(make_req(id, id * 512)), ++id;
        mc.tick(now);
        while (mc.has_response()) {
            starts.push_back(mc.pop_response().mem_start);
        }
        mc.commit();
    }
    ASSERT_FALSE(starts.empty());
    bool saw_post_refresh_start = false;
    for (cycle_t s : starts) {
        if (s < phase) continue;
        saw_post_refresh_start = true;
        EXPECT_GE((s - phase) % 100, 40u)
            << "start at " << s << " inside bank 0's refresh window";
    }
    EXPECT_TRUE(saw_post_refresh_start);
}

TEST(memory_controller, refresh_staggers_banks_and_closes_rows) {
    memctrl_config cfg;
    cfg.timing.t_refi = 50;
    cfg.timing.t_rfc = 10;
    memory_controller mc(cfg);
    // Open rows in bank 0 and bank 7, then idle across bank 0's staggered
    // window (t_refi/8 = 6) but not bank 7's (at t_refi = 50).
    mc.push(make_req(0, 0));
    mc.push(make_req(1, 7 * 64));
    drain(mc, 45);
    // Bank 0 was refreshed: row evicted, and the first re-access pays the
    // conflict path (the refresh issued the precharge). Bank 7 still hits.
    EXPECT_EQ(mc.dram().classify(make_req(99, 0)), row_outcome::conflict);
    EXPECT_EQ(mc.dram().classify(make_req(99, 7 * 64)), row_outcome::hit);
    EXPECT_GT(mc.maintenance().refreshes(), 0u);
}

TEST(memory_controller, staggered_refresh_preserves_multibank_throughput) {
    // The DSARP payoff: with one bank refreshing at a time, traffic
    // spread across banks barely notices a 20% per-bank refresh duty.
    auto saturated_throughput = [](std::uint32_t t_refi,
                                   std::uint32_t t_rfc) {
        memctrl_config cfg;
        cfg.timing.t_refi = t_refi;
        cfg.timing.t_rfc = t_rfc;
        memory_controller mc(cfg);
        request_id_t id = 0;
        for (cycle_t now = 0; now < 8000; ++now) {
            while (mc.can_accept()) mc.push(make_req(id, id * 64)), ++id;
            mc.tick(now);
            while (mc.has_response()) mc.pop_response();
            mc.commit();
        }
        return mc.serviced();
    };
    const auto base = saturated_throughput(0, 0);
    const auto refreshed = saturated_throughput(200, 40);
    EXPECT_GE(static_cast<double>(refreshed),
              static_cast<double>(base) * 0.9);
}

TEST(memory_controller, refresh_disabled_by_default) {
    memctrl_config cfg;
    EXPECT_EQ(cfg.timing.t_refi, 0u);
    memory_controller mc(cfg);
    mc.push(make_req(0, 0));
    drain(mc, 200);
    EXPECT_EQ(mc.dram().classify(make_req(99, 0)), row_outcome::hit);
}

TEST(memory_controller, single_bank_throughput_degrades_by_refresh_duty) {
    // Pinned to one bank, the per-bank refresh duty (plus the post-window
    // conflict reopen) comes straight out of throughput.
    auto saturated_throughput = [](std::uint32_t t_refi,
                                   std::uint32_t t_rfc) {
        memctrl_config cfg;
        cfg.timing.t_refi = t_refi;
        cfg.timing.t_rfc = t_rfc;
        memory_controller mc(cfg);
        request_id_t id = 0;
        for (cycle_t now = 0; now < 8000; ++now) {
            while (mc.can_accept()) mc.push(make_req(id, id * 512)), ++id;
            mc.tick(now);
            while (mc.has_response()) mc.pop_response();
            mc.commit();
        }
        return mc.serviced();
    };
    const auto base = saturated_throughput(0, 0);
    const auto refreshed = saturated_throughput(200, 40); // 20% duty
    EXPECT_LT(static_cast<double>(refreshed),
              static_cast<double>(base) * 0.87);
    EXPECT_GT(static_cast<double>(refreshed),
              static_cast<double>(base) * 0.65);
}

TEST(memory_controller, bank_parallelism_overlaps_service) {
    memctrl_config cfg;
    cfg.initiation_interval = 4;
    memory_controller mc(cfg);
    // Same bank twice: second start waits for the bank.
    mc.push(make_req(0, 0));
    mc.push(make_req(1, 0)); // same line -> same bank (row hit though)
    mc.push(make_req(2, 64 * 8)); // bank 0 again, same row region
    const auto same_bank = drain(mc, 300);
    ASSERT_EQ(same_bank.size(), 3u);

    memory_controller mc2(cfg);
    mc2.push(make_req(0, 0));
    mc2.push(make_req(1, 64));  // different bank
    mc2.push(make_req(2, 128)); // different bank
    const auto diff_bank = drain(mc2, 300);
    ASSERT_EQ(diff_bank.size(), 3u);
    EXPECT_LE(diff_bank[2].mem_done, same_bank[2].mem_done);
}

} // namespace
} // namespace bluescale
