#include <gtest/gtest.h>

#include "mem/memory_subsystem.hpp"

namespace bluescale {
namespace {

mem_request req(request_id_t id, std::uint64_t addr) {
    mem_request r;
    r.id = id;
    r.addr = addr;
    r.abs_deadline = 1'000'000;
    r.level_deadline = 1'000'000;
    return r;
}

std::uint64_t run_stream(memory_subsystem& mem, cycle_t cycles) {
    std::uint64_t pushed = 0;
    for (cycle_t now = 0; now < cycles; ++now) {
        while (mem.controller().can_accept()) {
            mem.controller().push(req(pushed, pushed * 64));
            ++pushed;
        }
        mem.controller().tick(now);
        while (mem.controller().has_response()) {
            mem.controller().pop_response();
        }
        mem.controller().commit();
    }
    return mem.stats().serviced;
}

TEST(memory_subsystem, preset_names) {
    EXPECT_STREQ(preset_name(dram_preset::ddr3_1600), "DDR3-1600");
    EXPECT_STREQ(preset_name(dram_preset::lpddr4), "LPDDR4");
    EXPECT_STREQ(preset_name(dram_preset::fast_sram), "SRAM");
}

TEST(memory_subsystem, ddr3_matches_default_timing) {
    const auto t = make_dram_timing(dram_preset::ddr3_1600);
    const dram_timing d;
    EXPECT_EQ(t.t_cas, d.t_cas);
    EXPECT_EQ(t.n_banks, d.n_banks);
}

TEST(memory_subsystem, every_dram_preset_has_refresh_enabled) {
    // The struct default keeps refresh opt-in, but the *named* DRAM
    // presets must model the real part: nonzero refresh cadence. Only
    // SRAM legitimately skips refresh.
    for (const auto preset : {dram_preset::ddr3_1600, dram_preset::lpddr4}) {
        const auto t = make_dram_timing(preset);
        EXPECT_GT(t.t_refi, 0u) << preset_name(preset);
        EXPECT_GT(t.t_rfc, 0u) << preset_name(preset);
        // The stall must be a small fraction of the cadence, or the
        // preset would spend more time refreshing than serving.
        EXPECT_LT(t.t_rfc, t.t_refi / 4) << preset_name(preset);
    }
    EXPECT_EQ(make_dram_timing(dram_preset::fast_sram).t_refi, 0u);
}

TEST(memory_subsystem, sram_is_uniform_and_fast) {
    const auto cfg = make_memctrl_config(dram_preset::fast_sram);
    EXPECT_EQ(cfg.initiation_interval, 1u);
    EXPECT_EQ(cfg.timing.n_banks, 1u);
}

TEST(memory_subsystem, throughput_ordering_across_presets) {
    memory_subsystem sram(dram_preset::fast_sram);
    memory_subsystem ddr(dram_preset::ddr3_1600);
    memory_subsystem lp(dram_preset::lpddr4);
    const auto s = run_stream(sram, 4000);
    const auto d = run_stream(ddr, 4000);
    const auto l = run_stream(lp, 4000);
    EXPECT_GT(s, d);
    EXPECT_GT(d, l);
}

TEST(memory_subsystem, stats_snapshot_and_describe) {
    memory_subsystem mem;
    run_stream(mem, 500);
    const auto s = mem.stats();
    EXPECT_GT(s.serviced, 0u);
    EXPECT_GT(s.row_hits + s.row_misses, 0u);
    EXPECT_GE(s.hit_rate(), 0.0);
    EXPECT_LE(s.hit_rate(), 1.0);
    const std::string d = mem.describe();
    EXPECT_NE(d.find("DDR3-1600"), std::string::npos);
    EXPECT_NE(d.find("row hits"), std::string::npos);
}

TEST(memory_subsystem, usable_behind_an_interconnect) {
    memory_subsystem mem(dram_preset::ddr3_1600);
    // The facade exposes the same controller the interconnects attach to.
    EXPECT_TRUE(mem.controller().can_accept());
    EXPECT_TRUE(mem.controller().idle());
}

} // namespace
} // namespace bluescale
