#include <gtest/gtest.h>

#include <sstream>

#include "obs/registry.hpp"

namespace bluescale::obs {
namespace {

TEST(obs_registry, handles_mutate_their_slots) {
    registry reg;
    auto c = reg.make_counter("a/count");
    auto g = reg.make_gauge("a/level");
    auto r = reg.make_real("a/rate");
    auto s = reg.make_sample("a/wait");
    c.inc();
    c.inc(4);
    g.set(-3);
    g.add(1);
    r.set(2.5);
    r.add(0.5);
    s.add(1.0);
    s.add(3.0);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(g.value(), -2);
    EXPECT_DOUBLE_EQ(r.value(), 3.0);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.values().mean(), 2.0);
}

TEST(obs_registry, unbound_handles_are_harmless) {
    counter c;
    gauge g;
    real_gauge r;
    sample s;
    c.inc(7);
    g.add(7);
    r.add(7.0);
    s.add(7.0);
    EXPECT_FALSE(c.bound());
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(s.values().samples().empty());
}

TEST(obs_registry, rebinding_the_same_name_is_idempotent) {
    registry reg;
    auto a = reg.make_counter("x/served");
    auto b = reg.make_counter("x/served");
    a.inc(2);
    b.inc(3);
    EXPECT_EQ(a.value(), 5u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(obs_registry, snapshot_is_sorted_regardless_of_registration_order) {
    registry fwd;
    registry rev;
    for (const char* name : {"a/one", "b/two", "c/three"}) {
        fwd.make_counter(name).inc();
    }
    for (const char* name : {"c/three", "b/two", "a/one"}) {
        rev.make_counter(name).inc();
    }
    const snapshot sf = fwd.take_snapshot();
    const snapshot sr = rev.take_snapshot();
    ASSERT_EQ(sf.entries().size(), 3u);
    ASSERT_EQ(sr.entries().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(sf.entries()[i].first, sr.entries()[i].first);
    }
    std::ostringstream a;
    std::ostringstream b;
    sf.write_csv(a);
    sr.write_csv(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(obs_registry, merge_sums_scalars_and_appends_samples_in_call_order) {
    registry r1;
    registry r2;
    r1.make_counter("n").inc(2);
    r2.make_counter("n").inc(3);
    r1.make_sample("w").add(1.0);
    r2.make_sample("w").add(2.0);
    r2.make_counter("only_second").inc(9);

    snapshot merged = r1.take_snapshot();
    merged.merge(r2.take_snapshot());
    EXPECT_EQ(merged.find("n")->count, 5u);
    EXPECT_EQ(merged.find("only_second")->count, 9u);
    const auto& w = merged.find("w")->samples.samples();
    ASSERT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w[0], 1.0); // merge target first: call order
    EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(obs_registry, diff_subtracts_scalars_and_keeps_sample_tail) {
    registry reg;
    auto c = reg.make_counter("n");
    auto s = reg.make_sample("w");
    c.inc(10);
    s.add(1.0);
    const snapshot base = reg.take_snapshot();
    c.inc(7);
    s.add(2.0);
    s.add(3.0);
    const snapshot d = reg.take_snapshot().diff(base);
    EXPECT_EQ(d.find("n")->count, 7u);
    const auto& tail = d.find("w")->samples.samples();
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_DOUBLE_EQ(tail[0], 2.0);
    EXPECT_DOUBLE_EQ(tail[1], 3.0);
}

TEST(obs_registry, profile_metrics_stay_out_of_deterministic_snapshots) {
    registry reg;
    reg.make_counter("sim/ticks").inc(5);
    reg.make_counter("profile/wall_ns", k_metric_profile).inc(123);
    const snapshot det = reg.take_snapshot();
    EXPECT_NE(det.find("sim/ticks"), nullptr);
    EXPECT_EQ(det.find("profile/wall_ns"), nullptr);
    const snapshot full = reg.take_snapshot(true);
    EXPECT_NE(full.find("profile/wall_ns"), nullptr);
    const snapshot prof = full.profile_only();
    ASSERT_EQ(prof.entries().size(), 1u);
    EXPECT_EQ(prof.entries().front().first, "profile/wall_ns");
}

TEST(obs_registry, reset_values_zeroes_but_keeps_bindings) {
    registry reg;
    auto c = reg.make_counter("n");
    auto s = reg.make_sample("w");
    c.inc(4);
    s.add(1.5);
    reg.reset_values();
    EXPECT_TRUE(c.bound());
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(s.count(), 0u);
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

TEST(obs_registry, write_csv_is_deterministic_and_well_formed) {
    registry reg;
    reg.make_counter("b/count").inc(2);
    reg.make_sample("a/wait").add(4.0);
    std::ostringstream os;
    reg.take_snapshot().write_csv(os, "pre/");
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("metric,kind,value,count,mean,min,max,p50,p99\n", 0),
              0u);
    EXPECT_NE(text.find("pre/a/wait,sample,"), std::string::npos);
    EXPECT_NE(text.find("pre/b/count,counter," + std::to_string(2)),
              std::string::npos);
    // Sorted: the sample row precedes the counter row.
    EXPECT_LT(text.find("pre/a/wait"), text.find("pre/b/count"));
}

TEST(obs_registry, metric_cells_render_stats_and_default_missing_to_zero) {
    registry reg;
    auto s = reg.make_sample("w");
    s.add(1.0);
    s.add(3.0);
    reg.make_counter("n").inc(4);
    const snapshot snap = reg.take_snapshot();
    const auto cells = metric_cells(
        snap, {"n", "w", "w:max", "w:count", "absent", "absent:p99"});
    ASSERT_EQ(cells.size(), 6u);
    EXPECT_EQ(cells[0], std::to_string(std::uint64_t{4}));
    EXPECT_EQ(cells[1], std::to_string(2.0)); // default: mean
    EXPECT_EQ(cells[2], std::to_string(3.0));
    EXPECT_EQ(cells[3], std::to_string(std::uint64_t{2}));
    EXPECT_EQ(cells[4], "0");
    EXPECT_EQ(cells[5], "0");
}

} // namespace
} // namespace bluescale::obs
