#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "obs/trace.hpp"

namespace bluescale::obs {
namespace {

// Minimal JSON well-formedness scanner: string-aware brace/bracket
// balancing plus a few shape checks (no trailing commas, document is one
// object). Enough to guarantee chrome://tracing / Perfetto can parse the
// export without dragging a JSON library into the tests.
bool json_well_formed(const std::string& text) {
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    char last_significant = '\0';
    bool seen_any = false;
    for (const char ch : text) {
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (ch == '\\') {
                escaped = true;
            } else if (ch == '"') {
                in_string = false;
            } else if (static_cast<unsigned char>(ch) < 0x20) {
                return false; // raw control char inside a string
            }
            continue;
        }
        switch (ch) {
        case '"': in_string = true; break;
        case '{':
        case '[':
            ++depth;
            break;
        case '}':
        case ']':
            if (--depth < 0) return false;
            if (last_significant == ',') return false; // trailing comma
            break;
        default: break;
        }
        if (ch != ' ' && ch != '\n' && ch != '\t' && ch != '\r') {
            if (!seen_any) {
                if (ch != '{') return false; // document must be an object
                seen_any = true;
            }
            last_significant = ch;
        }
    }
    return !in_string && depth == 0 && last_significant == '}';
}

TEST(obs_trace, export_writers_handle_an_empty_trace) {
    const trace_export empty;
    std::ostringstream csv;
    empty.write_csv(csv);
    EXPECT_EQ(csv.str(), "cycle,seq,component,event,a,b\n");
    std::ostringstream json;
    empty.write_chrome_json(json);
    EXPECT_TRUE(json_well_formed(json.str())) << json.str();
    EXPECT_NE(json.str().find("\"traceEvents\""), std::string::npos);
}

#if BLUESCALE_TRACE_ENABLED

TEST(obs_trace, events_carry_clock_operands_and_global_seq) {
    trace_sink sink;
    auto mem = sink.register_component("mem");
    auto se = sink.register_component("se.0.0");
    sink.set_now(10);
    se.emit(trace_event_kind::request_enqueue, 7, 2);
    sink.set_now(11);
    mem.emit(trace_event_kind::mem_complete, 7, 0);

    const trace_export ex = sink.export_all();
    ASSERT_EQ(ex.events.size(), 2u);
    EXPECT_EQ(ex.events[0].seq, 0u);
    EXPECT_EQ(ex.events[1].seq, 1u);
    EXPECT_EQ(ex.events[0].cycle, 10u);
    EXPECT_EQ(ex.events[1].cycle, 11u);
    EXPECT_EQ(ex.events[0].kind, trace_event_kind::request_enqueue);
    EXPECT_EQ(ex.events[0].a, 7u);
    EXPECT_EQ(ex.events[0].b, 2u);
    ASSERT_EQ(ex.components.size(), 2u);
    EXPECT_EQ(ex.components[ex.events[0].component], "se.0.0");
    EXPECT_EQ(ex.components[ex.events[1].component], "mem");
}

TEST(obs_trace, register_component_is_idempotent) {
    trace_sink sink;
    auto a = sink.register_component("mem");
    auto b = sink.register_component("mem");
    a.emit(trace_event_kind::mem_complete, 1, 0);
    b.emit(trace_event_kind::mem_complete, 2, 0);
    const trace_export ex = sink.export_all();
    EXPECT_EQ(ex.components.size(), 1u);
    ASSERT_EQ(ex.events.size(), 2u);
    EXPECT_EQ(ex.events[0].component, ex.events[1].component);
}

TEST(obs_trace, ring_overflow_drops_oldest_and_counts_drops) {
    trace_sink sink(4);
    auto t = sink.register_component("se");
    for (std::uint64_t i = 0; i < 10; ++i) {
        t.emit(trace_event_kind::request_grant, i, 0);
    }
    const trace_export ex = sink.export_all();
    ASSERT_EQ(ex.events.size(), 4u);
    // Drop-oldest: the newest four events survive, in seq order.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ex.events[i].seq, 6u + i);
        EXPECT_EQ(ex.events[i].a, 6u + i);
    }
    ASSERT_EQ(ex.dropped.size(), 1u);
    EXPECT_EQ(ex.dropped[0], 6u);
    EXPECT_EQ(sink.total_dropped(), 6u);
    EXPECT_EQ(sink.total_events(), 10u);
}

TEST(obs_trace, overflow_is_per_component) {
    trace_sink sink(2);
    auto busy = sink.register_component("busy");
    auto idle = sink.register_component("idle");
    for (int i = 0; i < 5; ++i) {
        busy.emit(trace_event_kind::request_grant);
    }
    idle.emit(trace_event_kind::server_exhaust);
    const trace_export ex = sink.export_all();
    ASSERT_EQ(ex.dropped.size(), 2u);
    EXPECT_EQ(ex.dropped[0], 3u);
    EXPECT_EQ(ex.dropped[1], 0u);
    // The idle component's lone event survived the busy one's overflow.
    ASSERT_EQ(ex.events.size(), 3u);
    EXPECT_EQ(ex.events.back().kind, trace_event_kind::server_exhaust);
}

TEST(obs_trace, clear_drops_events_but_keeps_streams_bound) {
    trace_sink sink;
    auto t = sink.register_component("se");
    t.emit(trace_event_kind::request_grant, 1, 0);
    sink.clear();
    EXPECT_TRUE(sink.export_all().events.empty());
    t.emit(trace_event_kind::request_grant, 2, 0);
    const trace_export ex = sink.export_all();
    ASSERT_EQ(ex.events.size(), 1u);
    EXPECT_EQ(ex.events[0].a, 2u);
}

TEST(obs_trace, csv_export_rows_match_the_events) {
    trace_sink sink;
    auto t = sink.register_component("se.1.0");
    sink.set_now(42);
    t.emit(trace_event_kind::server_replenish, 3, 8);
    std::ostringstream os;
    sink.export_all().write_csv(os);
    EXPECT_EQ(os.str(),
              "cycle,seq,component,event,a,b\n"
              "42,0,se.1.0,server_replenish,3,8\n");
}

TEST(obs_trace, chrome_json_is_well_formed_and_names_components) {
    trace_sink sink;
    auto se = sink.register_component("se.0.0");
    auto mem = sink.register_component("mem");
    sink.set_now(5);
    se.emit(trace_event_kind::request_enqueue, 1, 0);
    sink.set_now(6);
    mem.emit(trace_event_kind::mem_complete, 1, 0);
    std::ostringstream os;
    sink.export_all().write_chrome_json(os);
    const std::string text = os.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("se.0.0"), std::string::npos);
    EXPECT_NE(text.find("request_enqueue"), std::string::npos);
    EXPECT_NE(text.find("mem_complete"), std::string::npos);
}

#else // !BLUESCALE_TRACE_ENABLED

TEST(obs_trace, disabled_build_compiles_to_inert_stubs) {
    trace_sink sink(64);
    auto t = sink.register_component("se");
    t.emit(trace_event_kind::request_grant, 1, 2);
    EXPECT_FALSE(t.enabled());
    EXPECT_EQ(sink.total_events(), 0u);
    EXPECT_TRUE(sink.export_all().events.empty());
}

#endif // BLUESCALE_TRACE_ENABLED

TEST(obs_trace, every_event_kind_has_a_name) {
    for (int k = 0; k <= static_cast<int>(trace_event_kind::watchdog_alarm);
         ++k) {
        const char* name =
            trace_event_kind_name(static_cast<trace_event_kind>(k));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

} // namespace
} // namespace bluescale::obs
