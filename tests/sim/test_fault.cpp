// Fault campaign generation and window semantics: campaigns are pure
// functions of their config (the determinism contract parallel trial
// sweeps rely on), and fault_window is a forward-only cursor that merges
// overlapping events and resets cleanly between trials.
#include <gtest/gtest.h>

#include "sim/fault.hpp"

namespace bluescale::sim {
namespace {

fault_campaign_config config(std::uint64_t seed, double intensity = 1.0) {
    fault_campaign_config cfg;
    cfg.seed = seed;
    cfg.horizon = 50'000;
    cfg.events_per_kcycle = intensity;
    cfg.n_elements = 5;
    return cfg;
}

TEST(fault_campaign, same_seed_same_schedule) {
    const fault_campaign a(config(42));
    const fault_campaign b(config(42));
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.events(), b.events());
}

TEST(fault_campaign, different_seeds_differ) {
    const fault_campaign a(config(1));
    const fault_campaign b(config(2));
    EXPECT_NE(a.events(), b.events());
}

TEST(fault_campaign, intensity_scales_event_count) {
    EXPECT_EQ(fault_campaign(config(7, 0.0)).size(), 0u);
    // events_per_kcycle * horizon / 1000, independent of the seed.
    EXPECT_EQ(fault_campaign(config(7, 1.0)).size(), 50u);
    EXPECT_EQ(fault_campaign(config(8, 2.0)).size(), 100u);
}

TEST(fault_campaign, events_sorted_and_in_bounds) {
    const auto cfg = config(99);
    const fault_campaign c(cfg);
    cycle_t prev = 0;
    for (const auto& e : c.events()) {
        EXPECT_GE(e.start, prev);
        prev = e.start;
        EXPECT_LT(e.start, cfg.horizon);
        EXPECT_GE(e.duration, cfg.min_duration);
        EXPECT_LE(e.duration, cfg.max_duration);
        if (e.kind == fault_kind::se_stall ||
            e.kind == fault_kind::link_drop) {
            EXPECT_LT(e.target, cfg.n_elements);
        } else {
            EXPECT_EQ(e.target, 0u);
        }
    }
}

TEST(fault_campaign, slice_partitions_by_kind_and_target) {
    const fault_campaign c(config(5));
    std::size_t total = 0;
    for (std::uint32_t t = 0; t < 5; ++t) {
        total += c.slice(fault_kind::se_stall, t).size();
    }
    EXPECT_EQ(total, c.count(fault_kind::se_stall));
    EXPECT_EQ(c.slice_all(fault_kind::dram_error).size(),
              c.count(fault_kind::dram_error));
}

TEST(fault_campaign, worker_kinds_are_opt_in) {
    // The analysis-service kinds carry zero default weight: campaigns
    // seeded before the taxonomy grew stay bit-identical, and a default
    // config never schedules worker faults.
    const fault_campaign c(config(42));
    EXPECT_EQ(c.count(fault_kind::worker_crash), 0u);
    EXPECT_EQ(c.count(fault_kind::worker_stall), 0u);

    auto wcfg = config(42);
    wcfg.worker_crash_weight = 0.0;
    wcfg.worker_stall_weight = 0.0;
    EXPECT_EQ(fault_campaign(wcfg).events(), c.events());
}

TEST(fault_campaign, worker_targets_index_worker_slots) {
    auto cfg = config(13, 2.0);
    cfg.worker_crash_weight = 1.0;
    cfg.worker_stall_weight = 1.0;
    cfg.n_workers = 3;
    const fault_campaign c(cfg);
    std::size_t worker_events = 0;
    for (const auto& e : c.events()) {
        if (e.kind != fault_kind::worker_crash &&
            e.kind != fault_kind::worker_stall) {
            continue;
        }
        ++worker_events;
        EXPECT_LT(e.target, cfg.n_workers);
    }
    EXPECT_GT(worker_events, 0u);
    // Slices partition the worker kinds by slot, like every other kind.
    std::size_t sliced = 0;
    for (std::uint32_t w = 0; w < cfg.n_workers; ++w) {
        sliced += c.slice(fault_kind::worker_crash, w).size();
        sliced += c.slice(fault_kind::worker_stall, w).size();
    }
    EXPECT_EQ(sliced, worker_events);
}

TEST(fault_campaign, worker_only_campaign_touches_no_fabric_kind) {
    // The storm harness runs a second campaign with every fabric weight
    // zeroed so worker faults draw from an independent substream.
    auto cfg = config(21, 1.0);
    cfg.se_stall_weight = 0.0;
    cfg.link_drop_weight = 0.0;
    cfg.dram_error_weight = 0.0;
    cfg.backpressure_weight = 0.0;
    cfg.worker_crash_weight = 1.0;
    cfg.worker_stall_weight = 1.0;
    cfg.n_workers = 2;
    const fault_campaign c(cfg);
    ASSERT_FALSE(c.empty());
    for (const auto& e : c.events()) {
        EXPECT_TRUE(e.kind == fault_kind::worker_crash ||
                    e.kind == fault_kind::worker_stall)
            << fault_kind_name(e.kind);
    }
}

TEST(fault_window, activates_over_event_span_only) {
    fault_window w({{fault_kind::se_stall, 0, /*start=*/10,
                     /*duration=*/5}});
    for (cycle_t t = 0; t < 10; ++t) EXPECT_FALSE(w.active(t)) << t;
    for (cycle_t t = 10; t < 15; ++t) EXPECT_TRUE(w.active(t)) << t;
    for (cycle_t t = 15; t < 20; ++t) EXPECT_FALSE(w.active(t)) << t;
    EXPECT_EQ(w.activations(), 1u);
}

TEST(fault_window, overlapping_events_merge_into_one_activation) {
    fault_window w({{fault_kind::se_stall, 0, 10, 10},
                    {fault_kind::se_stall, 0, 15, 20}});
    for (cycle_t t = 10; t < 35; ++t) EXPECT_TRUE(w.active(t)) << t;
    EXPECT_FALSE(w.active(35));
    EXPECT_EQ(w.activations(), 1u);
}

TEST(fault_window, disjoint_events_count_separately) {
    fault_window w({{fault_kind::se_stall, 0, 10, 5},
                    {fault_kind::se_stall, 0, 100, 5}});
    EXPECT_TRUE(w.active(12));
    EXPECT_FALSE(w.active(50));
    EXPECT_TRUE(w.active(101));
    EXPECT_EQ(w.activations(), 2u);
}

TEST(fault_window, reset_replays_identically) {
    fault_window w({{fault_kind::se_stall, 0, 10, 5},
                    {fault_kind::se_stall, 0, 30, 5}});
    std::vector<bool> first;
    for (cycle_t t = 0; t < 40; ++t) first.push_back(w.active(t));
    w.reset();
    EXPECT_EQ(w.activations(), 0u);
    for (cycle_t t = 0; t < 40; ++t) {
        EXPECT_EQ(w.active(t), first[static_cast<std::size_t>(t)]) << t;
    }
}

TEST(fault_window, empty_window_never_active) {
    fault_window w;
    EXPECT_TRUE(w.empty());
    EXPECT_FALSE(w.active(0));
    EXPECT_FALSE(w.active(1'000'000));
    EXPECT_EQ(w.activations(), 0u);
}

} // namespace
} // namespace bluescale::sim
