#include <gtest/gtest.h>

#include <string>

#include "sim/fixed_queue.hpp"

namespace bluescale {
namespace {

TEST(fixed_queue, starts_empty) {
    fixed_queue<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 4u);
    EXPECT_EQ(q.free_slots(), 4u);
}

TEST(fixed_queue, push_pop_fifo_order) {
    fixed_queue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(fixed_queue, full_at_capacity) {
    fixed_queue<int> q(2);
    q.push(1);
    EXPECT_FALSE(q.full());
    q.push(2);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.free_slots(), 0u);
}

TEST(fixed_queue, wraps_around) {
    fixed_queue<int> q(3);
    for (int round = 0; round < 10; ++round) {
        q.push(round * 2);
        q.push(round * 2 + 1);
        EXPECT_EQ(q.pop(), round * 2);
        EXPECT_EQ(q.pop(), round * 2 + 1);
    }
    EXPECT_TRUE(q.empty());
}

TEST(fixed_queue, front_peeks_without_removing) {
    fixed_queue<int> q(4);
    q.push(42);
    EXPECT_EQ(q.front(), 42);
    EXPECT_EQ(q.size(), 1u);
}

TEST(fixed_queue, at_indexes_from_front) {
    fixed_queue<int> q(4);
    q.push(10);
    q.push(20);
    q.push(30);
    q.pop(); // head moves; at() must follow
    q.push(40);
    EXPECT_EQ(q.at(0), 20);
    EXPECT_EQ(q.at(1), 30);
    EXPECT_EQ(q.at(2), 40);
}

TEST(fixed_queue, extract_middle_preserves_order) {
    fixed_queue<int> q(5);
    for (int i = 1; i <= 5; ++i) q.push(i);
    EXPECT_EQ(q.extract(2), 3);
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 4);
    EXPECT_EQ(q.pop(), 5);
}

TEST(fixed_queue, extract_front_equals_pop) {
    fixed_queue<int> q(3);
    q.push(7);
    q.push(8);
    EXPECT_EQ(q.extract(0), 7);
    EXPECT_EQ(q.front(), 8);
}

TEST(fixed_queue, extract_last) {
    fixed_queue<int> q(3);
    q.push(7);
    q.push(8);
    q.push(9);
    EXPECT_EQ(q.extract(2), 9);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop(), 7);
    EXPECT_EQ(q.pop(), 8);
}

TEST(fixed_queue, extract_across_wraparound) {
    fixed_queue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    q.pop();
    q.pop();
    q.push(4);
    q.push(5); // storage wraps here
    EXPECT_EQ(q.extract(1), 4);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 5);
}

TEST(fixed_queue, clear_resets) {
    fixed_queue<int> q(3);
    q.push(1);
    q.push(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push(9);
    EXPECT_EQ(q.front(), 9);
}

TEST(fixed_queue, move_only_types) {
    fixed_queue<std::unique_ptr<int>> q(2);
    q.push(std::make_unique<int>(5));
    auto p = q.pop();
    EXPECT_EQ(*p, 5);
}

} // namespace
} // namespace bluescale
