#include <gtest/gtest.h>

#include "sim/latched_queue.hpp"

namespace bluescale {
namespace {

TEST(latched_queue, push_invisible_before_commit) {
    latched_queue<int> q(4);
    q.push(1);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(latched_queue, push_visible_after_commit) {
    latched_queue<int> q(4);
    q.push(1);
    q.commit();
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q.front(), 1);
}

TEST(latched_queue, staged_pushes_count_against_capacity) {
    latched_queue<int> q(2);
    q.push(1);
    EXPECT_TRUE(q.can_push());
    q.push(2);
    EXPECT_FALSE(q.can_push());
    EXPECT_EQ(q.free_slots(), 0u);
}

TEST(latched_queue, commit_preserves_push_order) {
    latched_queue<int> q(4);
    q.push(1);
    q.push(2);
    q.commit();
    q.push(3);
    q.commit();
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
}

TEST(latched_queue, pop_frees_capacity_for_next_cycle) {
    latched_queue<int> q(2);
    q.push(1);
    q.push(2);
    q.commit();
    EXPECT_FALSE(q.can_push());
    q.pop();
    EXPECT_TRUE(q.can_push());
}

TEST(latched_queue, producer_consumer_one_cycle_handoff) {
    // Models two components exchanging one value per cycle regardless of
    // tick order: the consumer never sees a same-cycle push.
    latched_queue<int> q(4);
    int received = -1;
    for (int cycle = 0; cycle < 3; ++cycle) {
        // consumer ticks first this cycle
        if (!q.empty()) received = q.pop();
        // producer ticks second
        q.push(cycle);
        q.commit();
        EXPECT_EQ(received, cycle - 1);
    }
}

TEST(latched_queue, at_and_extract_on_visible_elements) {
    latched_queue<int> q(4);
    q.push(10);
    q.push(20);
    q.push(30);
    q.commit();
    EXPECT_EQ(q.at(1), 20);
    EXPECT_EQ(q.extract(1), 20);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop(), 10);
    EXPECT_EQ(q.pop(), 30);
}

TEST(latched_queue, clear_drops_staged_and_visible) {
    latched_queue<int> q(4);
    q.push(1);
    q.commit();
    q.push(2); // staged
    q.clear();
    q.commit();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.free_slots(), 4u);
}

TEST(latched_queue, commit_with_nothing_staged_is_noop) {
    latched_queue<int> q(4);
    q.push(5);
    q.commit();
    q.commit();
    EXPECT_EQ(q.size(), 1u);
}

} // namespace
} // namespace bluescale
