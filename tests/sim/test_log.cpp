#include <gtest/gtest.h>

#include "sim/log.hpp"

namespace bluescale {
namespace {

class log_test : public ::testing::Test {
protected:
    void TearDown() override { set_log_level(log_level::off); }
};

TEST_F(log_test, default_level_is_off) {
    EXPECT_EQ(get_log_level(), log_level::off);
}

TEST_F(log_test, set_and_get_round_trip) {
    set_log_level(log_level::trace);
    EXPECT_EQ(get_log_level(), log_level::trace);
    set_log_level(log_level::error);
    EXPECT_EQ(get_log_level(), log_level::error);
}

TEST_F(log_test, suppressed_levels_do_not_crash) {
    set_log_level(log_level::off);
    log_line(log_level::error, 10, "suppressed");
    log_line(log_level::trace, 20, "suppressed");
    SUCCEED();
}

TEST_F(log_test, enabled_levels_do_not_crash) {
    set_log_level(log_level::trace);
    ::testing::internal::CaptureStderr();
    log_line(log_level::info, 42, "hello");
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("hello"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

TEST_F(log_test, level_ordering_filters) {
    set_log_level(log_level::error);
    ::testing::internal::CaptureStderr();
    log_line(log_level::info, 1, "filtered");
    log_line(log_level::error, 2, "kept");
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out.find("filtered"), std::string::npos);
    EXPECT_NE(out.find("kept"), std::string::npos);
}

} // namespace
} // namespace bluescale
