// Reconfiguration schedules are pure data: the same config must yield
// the same chronologically sorted, bounds-respecting event list on every
// run (the determinism contract reconfiguration experiments inherit).
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/reconfig_schedule.hpp"

namespace bluescale::sim {
namespace {

reconfig_schedule_config busy_config() {
    reconfig_schedule_config cfg;
    cfg.seed = 7;
    cfg.horizon = 50'000;
    cfg.warmup = 5'000;
    cfg.events_per_kcycle = 0.5;
    cfg.n_clients = 16;
    return cfg;
}

TEST(reconfig_schedule, deterministic_for_same_config) {
    const reconfig_schedule a(busy_config());
    const reconfig_schedule b(busy_config());
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a.events(), b.events());
}

TEST(reconfig_schedule, different_seeds_differ) {
    auto cfg = busy_config();
    const reconfig_schedule a(cfg);
    cfg.seed = 8;
    const reconfig_schedule b(cfg);
    EXPECT_NE(a.events(), b.events());
}

TEST(reconfig_schedule, zero_rate_is_empty) {
    auto cfg = busy_config();
    cfg.events_per_kcycle = 0.0;
    const reconfig_schedule s(cfg);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
}

TEST(reconfig_schedule, events_sorted_and_inside_bounds) {
    const auto cfg = busy_config();
    const reconfig_schedule s(cfg);
    ASSERT_FALSE(s.empty());
    cycle_t prev = 0;
    for (const auto& ev : s.events()) {
        EXPECT_GE(ev.at, cfg.warmup);
        EXPECT_LT(ev.at, cfg.horizon);
        EXPECT_GE(ev.at, prev);
        prev = ev.at;
        EXPECT_LT(ev.client, cfg.n_clients);
    }
}

TEST(reconfig_schedule, magnitudes_respect_action_ranges) {
    auto cfg = busy_config();
    cfg.events_per_kcycle = 2.0;
    const reconfig_schedule s(cfg);
    ASSERT_FALSE(s.empty());
    for (const auto& ev : s.events()) {
        switch (ev.action) {
        case reconfig_action::scale_up:
            EXPECT_GE(ev.magnitude, 1.0 + cfg.magnitude_lo);
            EXPECT_LE(ev.magnitude, 1.0 + cfg.magnitude_hi);
            break;
        case reconfig_action::scale_down:
            EXPECT_GE(ev.magnitude, 1.0 - cfg.magnitude_hi);
            EXPECT_LE(ev.magnitude, 1.0 - cfg.magnitude_lo);
            break;
        case reconfig_action::join:
            EXPECT_GE(ev.magnitude, cfg.magnitude_lo);
            EXPECT_LE(ev.magnitude, cfg.magnitude_hi);
            break;
        case reconfig_action::leave:
            EXPECT_EQ(ev.magnitude, 0.0);
            break;
        }
    }
}

TEST(reconfig_schedule, zero_weight_disables_action) {
    auto cfg = busy_config();
    cfg.events_per_kcycle = 2.0;
    cfg.join_weight = 0.0;
    cfg.leave_weight = 0.0;
    const reconfig_schedule s(cfg);
    ASSERT_FALSE(s.empty());
    EXPECT_EQ(s.count(reconfig_action::join), 0u);
    EXPECT_EQ(s.count(reconfig_action::leave), 0u);
    EXPECT_EQ(s.count(reconfig_action::scale_up) +
                  s.count(reconfig_action::scale_down),
              s.size());
}

TEST(reconfig_schedule, scripted_events_are_sorted) {
    const reconfig_schedule s(std::vector<reconfig_event>{
        {900, 2, reconfig_action::leave, 0.0},
        {100, 1, reconfig_action::scale_up, 1.5},
        {500, 0, reconfig_action::join, 0.3},
    });
    ASSERT_EQ(s.size(), 3u);
    EXPECT_TRUE(std::is_sorted(
        s.events().begin(), s.events().end(),
        [](const auto& a, const auto& b) { return a.at < b.at; }));
    EXPECT_EQ(s.events().front().at, 100u);
    EXPECT_EQ(s.events().back().at, 900u);
}

} // namespace
} // namespace bluescale::sim
