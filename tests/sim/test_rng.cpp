#include <gtest/gtest.h>

#include <array>
#include <set>

#include "sim/rng.hpp"

namespace bluescale {
namespace {

TEST(rng, deterministic_for_same_seed) {
    rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(rng, different_seeds_diverge) {
    rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(rng, reseed_restarts_stream) {
    rng a(99);
    std::array<std::uint64_t, 8> first{};
    for (auto& v : first) v = a.next();
    a.reseed(99);
    for (auto v : first) EXPECT_EQ(v, a.next());
}

TEST(rng, zero_seed_is_well_mixed) {
    rng a(0);
    // splitmix64 seeding must not produce a degenerate all-zero state.
    std::set<std::uint64_t> values;
    for (int i = 0; i < 64; ++i) values.insert(a.next());
    EXPECT_GT(values.size(), 60u);
}

TEST(rng, uniform_u64_respects_bounds) {
    rng a(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = a.uniform_u64(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(rng, uniform_u64_single_point_range) {
    rng a(7);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(a.uniform_u64(42, 42), 42u);
    }
}

TEST(rng, uniform_u64_covers_range) {
    rng a(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(a.uniform_u64(0, 9));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(rng, uniform_u64_unbiased_mean) {
    rng a(5);
    double sum = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += static_cast<double>(a.uniform_u64(0, 100));
    }
    EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(rng, uniform_unit_in_range) {
    rng a(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = a.uniform_unit();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(rng, uniform_real_respects_bounds) {
    rng a(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = a.uniform_real(-2.5, 7.5);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 7.5);
    }
}

TEST(rng, pick_covers_all_indices) {
    rng a(17);
    std::set<std::size_t> seen;
    for (int i = 0; i < 200; ++i) seen.insert(a.pick(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(rng, satisfies_uniform_random_bit_generator) {
    static_assert(std::uniform_random_bit_generator<rng>);
    SUCCEED();
}

} // namespace
} // namespace bluescale
