#include <gtest/gtest.h>

#include <vector>

#include "sim/component.hpp"
#include "sim/simulator.hpp"

namespace bluescale {
namespace {

class recorder : public component {
public:
    recorder() : component("recorder") {}
    void tick(cycle_t now) override { ticks.push_back(now); }
    void commit() override { ++commits; }
    std::vector<cycle_t> ticks;
    int commits = 0;
};

TEST(simulator, run_advances_time) {
    simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    sim.run(10);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(simulator, components_tick_every_cycle_with_correct_time) {
    simulator sim;
    recorder r;
    sim.add(r);
    sim.run(5);
    ASSERT_EQ(r.ticks.size(), 5u);
    for (cycle_t i = 0; i < 5; ++i) EXPECT_EQ(r.ticks[i], i);
}

TEST(simulator, commit_called_once_per_cycle) {
    simulator sim;
    recorder r;
    sim.add(r);
    sim.run(7);
    EXPECT_EQ(r.commits, 7);
}

TEST(simulator, all_components_tick_before_any_commit) {
    // Verifies the two-phase contract: within one cycle, both components
    // observe each other's pre-commit state.
    class phase_checker : public component {
    public:
        phase_checker(int& tick_count, int& commit_count)
            : component("pc"), ticks_(tick_count), commits_(commit_count) {}
        void tick(cycle_t) override {
            EXPECT_EQ(commits_, 0) << "commit ran before all ticks";
            ++ticks_;
        }
        void commit() override {
            EXPECT_EQ(ticks_, 2) << "not all components ticked yet";
            ++commits_;
        }

    private:
        int& ticks_;
        int& commits_;
    };
    int ticks = 0, commits = 0;
    phase_checker a(ticks, commits), b(ticks, commits);
    simulator sim;
    sim.add(a);
    sim.add(b);
    sim.step();
    EXPECT_EQ(ticks, 2);
    EXPECT_EQ(commits, 2);
}

TEST(simulator, run_until_predicate_fires) {
    simulator sim;
    recorder r;
    sim.add(r);
    const bool fired =
        sim.run_until([&] { return r.ticks.size() >= 3; }, 100);
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 3u);
}

TEST(simulator, run_until_honors_budget) {
    simulator sim;
    const bool fired = sim.run_until([] { return false; }, 20);
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.now(), 20u);
}

TEST(simulator, run_until_checks_before_stepping) {
    simulator sim;
    const bool fired = sim.run_until([] { return true; }, 20);
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 0u);
}

TEST(simulator, run_until_evaluates_predicate_once_per_cycle) {
    // The predicate is checked exactly once per cycle in the budget --
    // no double evaluation when the budget is exhausted.
    simulator sim;
    int evals = 0;
    const bool fired = sim.run_until(
        [&] {
            ++evals;
            return false;
        },
        20);
    EXPECT_FALSE(fired);
    EXPECT_EQ(evals, 20);
}

TEST(simulator, run_until_zero_budget_checks_once) {
    simulator sim;
    int evals = 0;
    const bool fired = sim.run_until(
        [&] {
            ++evals;
            return true;
        },
        0);
    EXPECT_TRUE(fired);
    EXPECT_EQ(evals, 1);
    EXPECT_EQ(sim.now(), 0u);
}

TEST(simulator, run_accumulates_across_calls) {
    simulator sim;
    sim.run(4);
    sim.run(6);
    EXPECT_EQ(sim.now(), 10u);
}

} // namespace
} // namespace bluescale
