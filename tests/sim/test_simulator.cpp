#include <gtest/gtest.h>

#include <vector>

#include "sim/component.hpp"
#include "sim/simulator.hpp"

namespace bluescale {
namespace {

class recorder : public component {
public:
    recorder() : component("recorder", /*latches=*/true) {}
    void tick(cycle_t now) override { ticks.push_back(now); }
    void commit() override { ++commits; }
    std::vector<cycle_t> ticks;
    int commits = 0;
};

TEST(simulator, run_advances_time) {
    simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    sim.run(10);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(simulator, components_tick_every_cycle_with_correct_time) {
    simulator sim;
    recorder r;
    sim.add(r);
    sim.run(5);
    ASSERT_EQ(r.ticks.size(), 5u);
    for (cycle_t i = 0; i < 5; ++i) EXPECT_EQ(r.ticks[i], i);
}

TEST(simulator, commit_called_once_per_cycle) {
    simulator sim;
    recorder r;
    sim.add(r);
    sim.run(7);
    EXPECT_EQ(r.commits, 7);
}

TEST(simulator, all_components_tick_before_any_commit) {
    // Verifies the two-phase contract: within one cycle, both components
    // observe each other's pre-commit state.
    class phase_checker : public component {
    public:
        phase_checker(int& tick_count, int& commit_count)
            : component("pc", /*latches=*/true), ticks_(tick_count),
              commits_(commit_count) {}
        void tick(cycle_t) override {
            EXPECT_EQ(commits_, 0) << "commit ran before all ticks";
            ++ticks_;
        }
        void commit() override {
            EXPECT_EQ(ticks_, 2) << "not all components ticked yet";
            ++commits_;
        }

    private:
        int& ticks_;
        int& commits_;
    };
    int ticks = 0, commits = 0;
    phase_checker a(ticks, commits), b(ticks, commits);
    simulator sim;
    sim.add(a);
    sim.add(b);
    sim.step();
    EXPECT_EQ(ticks, 2);
    EXPECT_EQ(commits, 2);
}

TEST(simulator, run_until_predicate_fires) {
    simulator sim;
    recorder r;
    sim.add(r);
    const bool fired =
        sim.run_until([&] { return r.ticks.size() >= 3; }, 100);
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 3u);
}

TEST(simulator, run_until_honors_budget) {
    simulator sim;
    const bool fired = sim.run_until([] { return false; }, 20);
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.now(), 20u);
}

TEST(simulator, run_until_checks_before_stepping) {
    simulator sim;
    const bool fired = sim.run_until([] { return true; }, 20);
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 0u);
}

TEST(simulator, run_until_evaluates_predicate_once_per_cycle) {
    // Lockstep contract: the predicate is checked exactly once per cycle
    // in the budget -- no double evaluation when the budget is exhausted.
    simulator sim(simulator::engine::lockstep);
    int evals = 0;
    const bool fired = sim.run_until(
        [&] {
            ++evals;
            return false;
        },
        20);
    EXPECT_FALSE(fired);
    EXPECT_EQ(evals, 20);
}

TEST(simulator, run_until_event_mode_checks_before_each_skip) {
    // Event contract: once per stepped cycle plus once before each idle
    // skip -- an empty simulation steps cycle 0, then skips to the end.
    simulator sim(simulator::engine::event);
    int evals = 0;
    const bool fired = sim.run_until(
        [&] {
            ++evals;
            return false;
        },
        20);
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.now(), 20u);
    EXPECT_EQ(evals, 2);
}

TEST(simulator, run_until_zero_budget_checks_once) {
    simulator sim;
    int evals = 0;
    const bool fired = sim.run_until(
        [&] {
            ++evals;
            return true;
        },
        0);
    EXPECT_TRUE(fired);
    EXPECT_EQ(evals, 1);
    EXPECT_EQ(sim.now(), 0u);
}

TEST(simulator, run_accumulates_across_calls) {
    simulator sim;
    sim.run(4);
    sim.run(6);
    EXPECT_EQ(sim.now(), 10u);
}

// --- event engine ------------------------------------------------------

class periodic_sleeper : public component {
public:
    periodic_sleeper() : component("periodic") {}
    void tick(cycle_t now) override { ticks.push_back(now); }
    [[nodiscard]] cycle_t next_event(cycle_t now) const override {
        return now + 10;
    }
    std::vector<cycle_t> ticks;
};

class quiescent : public component {
public:
    quiescent() : component("quiescent", /*latches=*/true) {}
    void tick(cycle_t now) override { ticks.push_back(now); }
    void commit() override { ++commits; }
    [[nodiscard]] cycle_t next_event(cycle_t) const override {
        return k_cycle_never;
    }
    std::vector<cycle_t> ticks;
    int commits = 0;
};

TEST(simulator, event_engine_skips_to_next_wakeup) {
    simulator sim(simulator::engine::event);
    periodic_sleeper p;
    sim.add(p);
    sim.run(35);
    EXPECT_EQ(sim.now(), 35u);
    ASSERT_EQ(p.ticks.size(), 4u); // cycles 0, 10, 20, 30
    EXPECT_EQ(p.ticks[1], 10u);
    EXPECT_EQ(p.ticks[3], 30u);
}

TEST(simulator, event_engine_skips_empty_simulation_to_horizon) {
    simulator sim(simulator::engine::event);
    sim.run(1'000'000);
    EXPECT_EQ(sim.now(), 1'000'000u);
}

TEST(simulator, event_engine_matches_lockstep_for_default_components) {
    // A component that never overrides next_event() ticks every cycle in
    // both engines -- the safe-by-default contract.
    simulator sim(simulator::engine::event);
    recorder r;
    sim.add(r);
    sim.run(5);
    ASSERT_EQ(r.ticks.size(), 5u);
    for (cycle_t i = 0; i < 5; ++i) EXPECT_EQ(r.ticks[i], i);
    EXPECT_EQ(r.commits, 5);
}

TEST(simulator, wake_rearms_quiescent_component) {
    simulator sim(simulator::engine::event);
    quiescent q;
    sim.add(q);
    sim.run(5);
    ASSERT_EQ(q.ticks.size(), 1u); // only the initial cycle
    EXPECT_EQ(q.ticks[0], 0u);
    q.wake();
    sim.run(5);
    ASSERT_EQ(q.ticks.size(), 2u);
    EXPECT_EQ(q.ticks[1], 5u);
}

TEST(simulator, component_woken_mid_cycle_commits_on_that_edge) {
    // A quiescent receiver woken during another component's tick must
    // still latch (commit) on the same cycle edge, so state staged into
    // it by the waker becomes visible next cycle -- as in lockstep.
    class waker : public component {
    public:
        explicit waker(quiescent& rx) : component("waker"), rx_(rx) {}
        void tick(cycle_t now) override {
            if (now == 1) rx_.wake();
        }

    private:
        quiescent& rx_;
    };
    quiescent rx;
    waker tx(rx);
    simulator sim(simulator::engine::event);
    sim.add(rx); // registered first: already passed over when woken
    sim.add(tx);
    sim.run(2);
    EXPECT_EQ(rx.commits, 2); // cycle 0 (initial) + cycle 1 (woken)
    ASSERT_EQ(rx.ticks.size(), 1u);
    sim.run(1);
    ASSERT_EQ(rx.ticks.size(), 2u); // the wake scheduled a cycle-2 tick
    EXPECT_EQ(rx.ticks[1], 2u);
}

TEST(simulator, event_engine_commits_latching_components_while_asleep) {
    // A latching component commits on every stepped cycle even when its
    // own tick is slept over: a producer may stage work into its queues
    // without waking it (transition-only wakes), and that work must
    // latch on the push cycle's edge exactly as in lockstep.
    class sleeper : public quiescent {};
    sleeper rx;
    recorder driver; // default horizon: keeps every cycle stepped
    simulator sim(simulator::engine::event);
    sim.add(rx);
    sim.add(driver);
    sim.run(5);
    ASSERT_EQ(rx.ticks.size(), 1u); // quiescent after cycle 0
    EXPECT_EQ(rx.commits, 5);       // but every edge still latched
}

TEST(simulator, default_engine_override_is_honored) {
    simulator::set_default_engine(simulator::engine::lockstep);
    simulator locked;
    EXPECT_EQ(locked.mode(), simulator::engine::lockstep);
    simulator::set_default_engine(simulator::engine::event);
    simulator evented;
    EXPECT_EQ(evented.mode(), simulator::engine::event);
    simulator::clear_default_engine();
}

} // namespace
} // namespace bluescale
