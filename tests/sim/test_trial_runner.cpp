#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"
#include "sim/trial_runner.hpp"

namespace bluescale::sim {
namespace {

TEST(trial_runner, resolve_threads_never_zero) {
    EXPECT_GE(resolve_threads(0), 1u);
    EXPECT_EQ(resolve_threads(1), 1u);
    EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(trial_runner, results_come_back_in_trial_order) {
    const trial_runner runner(4);
    const auto out = runner.run(
        64, [](std::uint32_t t) { return static_cast<int>(t) * 3; });
    ASSERT_EQ(out.size(), 64u);
    for (std::uint32_t t = 0; t < 64; ++t) {
        EXPECT_EQ(out[t], static_cast<int>(t) * 3);
    }
}

TEST(trial_runner, parallel_results_identical_to_serial) {
    // The determinism contract: for a pure trial function, the collected
    // vector is bit-identical regardless of thread count.
    const auto trial = [](std::uint32_t t) {
        rng r(substream(42, t));
        double acc = 0.0;
        for (int i = 0; i < 100; ++i) acc += r.uniform_unit();
        return acc;
    };
    const auto serial = trial_runner(1).run(40, trial);
    const auto parallel = trial_runner(4).run(40, trial);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]) << "trial " << i;
    }
}

TEST(trial_runner, zero_trials_is_a_noop) {
    const trial_runner runner(4);
    const auto out = runner.run(0, [](std::uint32_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(trial_runner, more_threads_than_trials) {
    const trial_runner runner(16);
    const auto out =
        runner.run(3, [](std::uint32_t t) { return static_cast<int>(t); });
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
}

TEST(trial_runner, for_each_visits_every_index_exactly_once) {
    constexpr std::uint32_t n = 200;
    std::vector<std::atomic<int>> visits(n);
    for_each_trial(n, 8, [&](std::uint32_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
}

TEST(trial_runner, serial_fallback_runs_in_index_order) {
    std::vector<std::uint32_t> order;
    for_each_trial(5, 1, [&](std::uint32_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(trial_runner, exception_propagates_to_caller) {
    const trial_runner runner(4);
    EXPECT_THROW(
        runner.for_each(32,
                        [](std::uint32_t t) {
                            if (t == 7) throw std::runtime_error("boom");
                        }),
        std::runtime_error);
}

TEST(rng_substream, deterministic_and_distinct) {
    EXPECT_EQ(substream(1, 0), substream(1, 0));
    EXPECT_NE(substream(1, 0), substream(1, 1));
    EXPECT_NE(substream(1, 0), substream(2, 0));
    // Streams from adjacent indices must not produce correlated draws.
    rng a(substream(99, 0));
    rng b(substream(99, 1));
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

} // namespace
} // namespace bluescale::sim
