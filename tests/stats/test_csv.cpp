#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/csv.hpp"

namespace bluescale::stats {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class csv_test : public ::testing::Test {
protected:
    std::string path_ = ::testing::TempDir() + "csv_test_out.csv";
    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(csv_test, writes_header_and_rows) {
    {
        csv_writer w(path_, {"a", "b"});
        ASSERT_TRUE(w.ok());
        w.add_row({"1", "2"});
        w.add_row({"3", "4"});
    }
    EXPECT_EQ(read_file(path_), "a,b\n1,2\n3,4\n");
}

TEST_F(csv_test, quotes_cells_with_commas) {
    {
        csv_writer w(path_, {"x"});
        w.add_row({"a,b"});
    }
    EXPECT_EQ(read_file(path_), "x\n\"a,b\"\n");
}

TEST_F(csv_test, escapes_embedded_quotes) {
    {
        csv_writer w(path_, {"x"});
        w.add_row({"say \"hi\""});
    }
    EXPECT_EQ(read_file(path_), "x\n\"say \"\"hi\"\"\"\n");
}

TEST_F(csv_test, quotes_newlines) {
    {
        csv_writer w(path_, {"x"});
        w.add_row({"two\nlines"});
    }
    EXPECT_EQ(read_file(path_), "x\n\"two\nlines\"\n");
}

TEST(csv, reports_unwritable_path) {
    csv_writer w("/nonexistent_dir_zz/file.csv", {"a"});
    EXPECT_FALSE(w.ok());
}

} // namespace
} // namespace bluescale::stats
