#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hpp"

namespace bluescale::stats {
namespace {

TEST(histogram, bins_values_correctly) {
    histogram h(0.0, 10.0, 5); // bins of width 2
    h.add(0.0);
    h.add(1.9);
    h.add(2.0);
    h.add(9.99);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.bin(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(histogram, underflow_and_overflow) {
    histogram h(0.0, 10.0, 5);
    h.add(-0.1);
    h.add(10.0); // hi edge is exclusive
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(histogram, bin_edges) {
    histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
    EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
    EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(histogram, value_on_inner_edge_goes_to_upper_bin) {
    histogram h(0.0, 4.0, 4);
    h.add(2.0);
    EXPECT_EQ(h.bin(2), 1u);
    EXPECT_EQ(h.bin(1), 0u);
}

TEST(histogram, negative_range) {
    histogram h(-10.0, 0.0, 2);
    h.add(-7.0);
    h.add(-1.0);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(1), 1u);
}

TEST(histogram, to_string_renders_all_bins) {
    histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    const std::string s = h.to_string(10);
    // Two bin lines, each ending with a bar.
    EXPECT_NE(s.find("#"), std::string::npos);
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

TEST(histogram, to_string_mentions_overflow) {
    histogram h(0.0, 1.0, 1);
    h.add(5.0);
    EXPECT_NE(h.to_string().find("overflow 1"), std::string::npos);
}

TEST(histogram, merge_accumulates_bins_and_total) {
    histogram a(0.0, 10.0, 5);
    a.add(1.0);
    a.add(3.0);
    histogram b(0.0, 10.0, 5);
    b.add(1.5);
    b.add(-1.0);
    b.add(42.0);
    a.merge(b);
    EXPECT_EQ(a.bin(0), 2u);
    EXPECT_EQ(a.bin(1), 1u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.total(), 5u);
}

TEST(histogram, merge_of_empty_is_noop) {
    histogram a(0.0, 10.0, 5);
    a.add(4.0);
    // Empty merges are no-ops even across mismatched layouts (an
    // untouched histogram carries no information to reconcile).
    const histogram empty(0.0, 100.0, 3);
    a.merge(empty);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(a.bin(2), 1u);
}

TEST(histogram, merge_into_empty_adopts_counts) {
    histogram a(0.0, 10.0, 2);
    histogram b(0.0, 10.0, 2);
    b.add(7.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(a.bin(1), 1u);
}

TEST(histogram, percentile_of_empty_is_zero) {
    const histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST(histogram, percentile_single_sample_is_well_defined) {
    histogram h(0.0, 10.0, 5);
    h.add(5.0); // bin [4, 6)
    // Every percentile of one sample resolves inside that sample's bin
    // (notably p99: rank must clamp to 1, not truncate to 0).
    for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
        const double v = h.percentile(p);
        EXPECT_GE(v, 4.0) << "p=" << p;
        EXPECT_LE(v, 6.0) << "p=" << p;
    }
}

TEST(histogram, percentile_interpolates_within_bins) {
    histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
    // Uniform mass: the p-th percentile tracks p itself to within a bin.
    EXPECT_NEAR(h.percentile(50.0), 50.0, 10.0);
    EXPECT_NEAR(h.percentile(99.0), 99.0, 10.0);
    EXPECT_LE(h.percentile(10.0), h.percentile(90.0));
}

TEST(histogram, percentile_clamps_out_of_range_p) {
    histogram h(0.0, 10.0, 5);
    h.add(2.0);
    h.add(8.0);
    EXPECT_DOUBLE_EQ(h.percentile(-5.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(250.0), h.percentile(100.0));
}

TEST(histogram, percentile_underflow_maps_to_lo_overflow_to_hi) {
    histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(-2.0);
    h.add(20.0);
    h.add(30.0);
    EXPECT_DOUBLE_EQ(h.percentile(25.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
}

TEST(histogram, percentile_all_mass_one_bin_no_division_blowup) {
    histogram h(0.0, 10.0, 5);
    for (int i = 0; i < 1000; ++i) h.add(5.0);
    const double p99 = h.percentile(99.0);
    EXPECT_GE(p99, 4.0);
    EXPECT_LE(p99, 6.0);
    EXPECT_TRUE(std::isfinite(p99));
}

} // namespace
} // namespace bluescale::stats
