#include <gtest/gtest.h>

#include "stats/histogram.hpp"

namespace bluescale::stats {
namespace {

TEST(histogram, bins_values_correctly) {
    histogram h(0.0, 10.0, 5); // bins of width 2
    h.add(0.0);
    h.add(1.9);
    h.add(2.0);
    h.add(9.99);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.bin(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(histogram, underflow_and_overflow) {
    histogram h(0.0, 10.0, 5);
    h.add(-0.1);
    h.add(10.0); // hi edge is exclusive
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(histogram, bin_edges) {
    histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
    EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
    EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(histogram, value_on_inner_edge_goes_to_upper_bin) {
    histogram h(0.0, 4.0, 4);
    h.add(2.0);
    EXPECT_EQ(h.bin(2), 1u);
    EXPECT_EQ(h.bin(1), 0u);
}

TEST(histogram, negative_range) {
    histogram h(-10.0, 0.0, 2);
    h.add(-7.0);
    h.add(-1.0);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(1), 1u);
}

TEST(histogram, to_string_renders_all_bins) {
    histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    const std::string s = h.to_string(10);
    // Two bin lines, each ending with a bar.
    EXPECT_NE(s.find("#"), std::string::npos);
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

TEST(histogram, to_string_mentions_overflow) {
    histogram h(0.0, 1.0, 1);
    h.add(5.0);
    EXPECT_NE(h.to_string().find("overflow 1"), std::string::npos);
}

} // namespace
} // namespace bluescale::stats
