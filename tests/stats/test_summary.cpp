#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "stats/summary.hpp"

namespace bluescale::stats {
namespace {

TEST(running_summary, empty_is_all_zero) {
    running_summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(running_summary, single_sample) {
    running_summary s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.sum(), 5.0);
}

TEST(running_summary, known_values) {
    running_summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 denominator: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(running_summary, negative_values) {
    running_summary s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), -3.0);
    EXPECT_EQ(s.max(), 3.0);
}

TEST(running_summary, welford_is_numerically_stable) {
    // Large offset + small variance: naive sum-of-squares would lose all
    // precision here.
    running_summary s;
    const double offset = 1e9;
    for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2));
    EXPECT_NEAR(s.variance(), 0.2502502, 1e-4);
}

TEST(running_summary, merge_matches_sequential) {
    rng r(31);
    running_summary whole, part1, part2;
    for (int i = 0; i < 500; ++i) {
        const double v = r.uniform_real(-10, 10);
        whole.add(v);
        (i < 200 ? part1 : part2).add(v);
    }
    part1.merge(part2);
    EXPECT_EQ(part1.count(), whole.count());
    EXPECT_NEAR(part1.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(part1.min(), whole.min());
    EXPECT_EQ(part1.max(), whole.max());
}

TEST(running_summary, merge_with_empty_is_identity) {
    running_summary a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), mean);

    running_summary b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.mean(), mean);
}

TEST(sample_set, percentile_of_known_sequence) {
    sample_set s;
    for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
    EXPECT_NEAR(s.percentile(0), 1.0, 1e-12);
    EXPECT_NEAR(s.percentile(100), 100.0, 1e-12);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.02);
}

TEST(sample_set, percentile_empty_is_zero) {
    sample_set s;
    EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(sample_set, percentile_single_sample) {
    sample_set s;
    s.add(7.0);
    EXPECT_EQ(s.percentile(0), 7.0);
    EXPECT_EQ(s.percentile(50), 7.0);
    EXPECT_EQ(s.percentile(100), 7.0);
}

TEST(sample_set, percentile_clamps_out_of_range) {
    sample_set s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_EQ(s.percentile(-5), 1.0);
    EXPECT_EQ(s.percentile(150), 2.0);
}

TEST(sample_set, add_after_percentile_query) {
    sample_set s;
    s.add(3.0);
    s.add(1.0);
    EXPECT_EQ(s.percentile(100), 3.0);
    s.add(5.0); // must re-sort lazily
    EXPECT_EQ(s.percentile(100), 5.0);
    EXPECT_EQ(s.percentile(0), 1.0);
}

TEST(sample_set, merge_is_bit_identical_to_sequential_add) {
    // merge() is defined as repeated add(), so merging per-trial sets in
    // trial order must reproduce the serial accumulation exactly -- this
    // is what makes parallel sweeps bit-identical to serial ones.
    rng r(77);
    sample_set whole, part1, part2;
    for (int i = 0; i < 300; ++i) {
        const double v = r.uniform_real(0, 1e6);
        whole.add(v);
        (i < 120 ? part1 : part2).add(v);
    }
    part1.merge(part2);
    EXPECT_EQ(part1.count(), whole.count());
    EXPECT_EQ(part1.samples(), whole.samples());
    EXPECT_EQ(part1.mean(), whole.mean());
    EXPECT_EQ(part1.variance(), whole.variance());
    EXPECT_EQ(part1.stddev(), whole.stddev());
    EXPECT_EQ(part1.min(), whole.min());
    EXPECT_EQ(part1.max(), whole.max());
    EXPECT_EQ(part1.percentile(90), whole.percentile(90));
}

TEST(sample_set, merge_with_empty_is_identity) {
    sample_set a, empty;
    a.add(4.0);
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), 3.0);

    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_EQ(empty.samples(), a.samples());
}

TEST(sample_set, mirrors_summary_stats) {
    sample_set s;
    for (double v : {1.0, 2.0, 3.0}) s.add(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 3.0);
}

} // namespace
} // namespace bluescale::stats
