#include <gtest/gtest.h>

#include "stats/table.hpp"

namespace bluescale::stats {
namespace {

TEST(table, renders_header_separator_rows) {
    table t({"a", "bb"});
    t.add_row({"1", "2"});
    const std::string s = t.to_string();
    // header + separator + one data row
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
    EXPECT_NE(s.find("| a "), std::string::npos);
    EXPECT_NE(s.find("| bb "), std::string::npos);
}

TEST(table, columns_align_to_widest_cell) {
    table t({"x"});
    t.add_row({"short"});
    t.add_row({"a much longer cell"});
    const std::string s = t.to_string();
    // Every line must have the same length (aligned columns).
    std::size_t prev = std::string::npos;
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t nl = s.find('\n', pos);
        const std::size_t len = nl - pos;
        if (prev != std::string::npos) {
            EXPECT_EQ(len, prev);
        }
        prev = len;
        pos = nl + 1;
    }
}

TEST(table, empty_table_has_header_only) {
    table t({"col"});
    const std::string s = t.to_string();
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2); // header + separator
}

TEST(table, num_formats_precision) {
    EXPECT_EQ(table::num(3.14159, 2), "3.14");
    EXPECT_EQ(table::num(3.14159, 0), "3");
    EXPECT_EQ(table::num(-1.5, 1), "-1.5");
}

TEST(table, pct_formats_fraction) {
    EXPECT_EQ(table::pct(0.5, 1), "50.0%");
    EXPECT_EQ(table::pct(0.1234, 2), "12.34%");
    EXPECT_EQ(table::pct(0.0, 0), "0%");
}

} // namespace
} // namespace bluescale::stats
