// Hardened analysis-as-a-service: bounded-queue shedding with
// hysteresis, per-request deadline cancellation (queued AND in-flight),
// deterministic retry/backoff for transient path hazards, the circuit
// breaker's degraded-precision fallback, the (Pi, Theta)-signature
// result cache with invalidate-on-commit, and exactly-once re-queue
// under scripted worker crash/stall faults. Every test closes with the
// conservation identity: submitted == shed + expired + rejected +
// committed once the service is idle.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/bluescale_ic.hpp"
#include "core/reconfig_manager.hpp"
#include "mem/memory_controller.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "svc/analysis_service.hpp"

namespace bluescale::svc {
namespace {

struct rig {
    explicit rig(service_config scfg = {}, core::reconfig_config mcfg = {})
        : fabric(16),
          clients(16, analysis::task_set{{200, 4}}),
          selection(analysis::select_tree_interfaces(clients)) {
        EXPECT_TRUE(selection.feasible);
        fabric.attach_memory(mem);
        fabric.set_response_handler([](mem_request&&) {});
        fabric.configure(selection);
        mgr = std::make_unique<core::reconfig_manager>(fabric, selection,
                                                       clients, mcfg);
        service = std::make_unique<analysis_service>(*mgr, scfg);
        sim.add(fabric);
        sim.add(mem);
        sim.add(*mgr);
        sim.add(*service); // after the manager, as in the storm harness
    }

    /// Runs until the request record is terminal (bounded).
    void run_until_done(std::uint64_t id, cycle_t max_cycles = 500'000) {
        sim.run_until(
            [&] {
                return service->record(id).outcome !=
                       request_outcome::pending;
            },
            max_cycles);
    }

    void run_until_idle(cycle_t max_cycles = 500'000) {
        sim.run_until(
            [&] { return service->idle() && mgr->backlog() == 0; },
            max_cycles);
    }

    /// The conservation identity every drained run must satisfy.
    void expect_conserved() {
        const auto s = service->stats();
        EXPECT_EQ(s.submitted,
                  s.shed + s.expired + s.rejected + s.committed);
        EXPECT_EQ(s.submitted, service->records().size());
        for (const auto& rec : service->records()) {
            EXPECT_NE(rec.outcome, request_outcome::pending)
                << "request " << rec.id;
        }
    }

    core::bluescale_ic fabric;
    memory_controller mem;
    std::vector<analysis::task_set> clients;
    analysis::tree_selection selection;
    std::unique_ptr<core::reconfig_manager> mgr;
    std::unique_ptr<analysis_service> service;
    simulator sim;
};

TEST(analysis_service, feasible_request_commits_end_to_end) {
    rig r;
    const auto id =
        r.service->submit(6, analysis::task_set{{100, 8}}, r.sim.now());
    r.run_until_done(id);
    const auto& rec = r.service->record(id);
    EXPECT_EQ(rec.outcome, request_outcome::committed);
    EXPECT_FALSE(rec.degraded);
    EXPECT_GT(rec.finished_at, rec.submitted_at);
    // The manager's committed state carries the request's task set.
    ASSERT_EQ(r.mgr->client_tasks()[6].size(), 1u);
    EXPECT_EQ(r.mgr->client_tasks()[6][0].period, 100u);
    r.run_until_idle();
    r.expect_conserved();
    EXPECT_EQ(r.service->stats().accepted, 1u);
}

TEST(analysis_service, bounded_queue_sheds_with_hysteresis) {
    service_config cfg;
    cfg.workers = 1;
    cfg.max_queue = 2;
    cfg.resume_depth = 1;
    cfg.min_eval_cycles = 50'000; // nothing drains during the test
    rig r(cfg);
    const analysis::task_set tasks{{100, 8}};

    const auto a = r.service->submit(1, tasks, r.sim.now());
    const auto b = r.service->submit(2, tasks, r.sim.now());
    const auto c = r.service->submit(3, tasks, r.sim.now());
    const auto d = r.service->submit(4, tasks, r.sim.now());
    EXPECT_EQ(r.service->record(a).outcome, request_outcome::pending);
    EXPECT_EQ(r.service->record(b).outcome, request_outcome::pending);
    // The queue bound shed c and d immediately, with a structured reason.
    for (auto id : {c, d}) {
        const auto& rec = r.service->record(id);
        EXPECT_EQ(rec.outcome, request_outcome::shed);
        EXPECT_EQ(rec.reject_reason,
                  core::admission_outcome::rejected_queue_full);
        EXPECT_EQ(rec.finished_at, rec.submitted_at);
        EXPECT_FALSE(rec.detail.empty());
    }
    EXPECT_TRUE(r.service->shedding());

    // One dispatch drains the queue to the low watermark; the hysteresis
    // gate then reopens admission.
    r.sim.run(4);
    ASSERT_EQ(r.service->queue_depth(), 1u);
    const auto e = r.service->submit(5, tasks, r.sim.now());
    EXPECT_EQ(r.service->record(e).outcome, request_outcome::pending);
    EXPECT_FALSE(r.service->shedding());
    EXPECT_EQ(r.service->stats().shed, 2u);
    EXPECT_EQ(r.service->stats().accepted, 3u);
}

TEST(analysis_service, queued_request_expires_at_its_deadline) {
    service_config cfg;
    cfg.workers = 1;
    cfg.min_eval_cycles = 10'000; // first request occupies the worker
    rig r(cfg);
    const auto a =
        r.service->submit(1, analysis::task_set{{100, 8}}, r.sim.now());
    const auto b = r.service->submit(2, analysis::task_set{{100, 8}},
                                     r.sim.now(), /*deadline=*/50);
    r.sim.run(200);
    EXPECT_EQ(r.service->record(a).outcome, request_outcome::pending);
    const auto& rec = r.service->record(b);
    EXPECT_EQ(rec.outcome, request_outcome::expired);
    EXPECT_EQ(rec.reject_reason,
              core::admission_outcome::rejected_deadline_expired);
    // Expiry is swept the cycle after the deadline passes, not later.
    EXPECT_EQ(rec.finished_at, 51u);
}

TEST(analysis_service, deadline_cancels_an_in_flight_evaluation) {
    service_config cfg;
    cfg.workers = 1;
    cfg.min_eval_cycles = 10'000; // far beyond the request's deadline
    rig r(cfg);
    const auto a = r.service->submit(1, analysis::task_set{{100, 8}},
                                     r.sim.now(), /*deadline=*/100);
    r.sim.run(5);
    // Dispatched: the evaluation's modeled cost will outrun the deadline.
    EXPECT_FALSE(r.service->idle());
    r.sim.run(200);
    const auto& rec = r.service->record(a);
    EXPECT_EQ(rec.outcome, request_outcome::expired);
    EXPECT_EQ(rec.finished_at, 101u);
    EXPECT_NE(rec.detail.find("cancelled"), std::string::npos)
        << rec.detail;

    // Cancellation freed the worker slot: a live request runs to commit.
    const auto b =
        r.service->submit(2, analysis::task_set{{100, 8}}, r.sim.now());
    r.run_until_done(b);
    EXPECT_EQ(r.service->record(b).outcome, request_outcome::committed);
    r.run_until_idle();
    r.expect_conserved();
}

TEST(analysis_service, transient_path_hazard_retries_then_commits) {
    service_config cfg;
    // A generous retry budget and long backoff rounds, so the hazard can
    // clear mid-backoff without the budget running dry first.
    cfg.max_retries = 10;
    cfg.backoff_base = 2'048;
    cfg.backoff_cap = 8'192;
    rig r(cfg);
    // Client 6 sits behind leaf SE(1, 1): the manager rejects its
    // admission with rejected_path_hazard while the SE is degraded.
    r.fabric.se_at(1, 1).set_degraded(true);
    const auto id =
        r.service->submit(6, analysis::task_set{{100, 8}}, r.sim.now());
    // The first exact evaluation models O(10k) cycles; run past it plus
    // at least one backoff round (the redo is a cache hit, so cheap).
    r.sim.run(15'000);
    EXPECT_EQ(r.service->record(id).outcome, request_outcome::pending);
    EXPECT_GE(r.service->record(id).retries, 1u);

    // The hazard clears; the next retry goes through.
    r.fabric.se_at(1, 1).set_degraded(false);
    r.run_until_done(id);
    const auto& rec = r.service->record(id);
    EXPECT_EQ(rec.outcome, request_outcome::committed);
    EXPECT_GE(rec.retries, 1u);
    EXPECT_EQ(r.service->stats().retries, rec.retries);
    r.run_until_idle();
    r.expect_conserved();
}

TEST(analysis_service, retries_exhaust_into_a_structured_rejection) {
    service_config cfg;
    cfg.max_retries = 2;
    rig r(cfg);
    r.fabric.se_at(1, 1).set_degraded(true); // never recovers
    const auto id =
        r.service->submit(6, analysis::task_set{{100, 8}}, r.sim.now());
    r.run_until_done(id);
    const auto& rec = r.service->record(id);
    EXPECT_EQ(rec.outcome, request_outcome::rejected);
    EXPECT_EQ(rec.reject_reason,
              core::admission_outcome::rejected_path_hazard);
    EXPECT_EQ(rec.retries, 2u);
    EXPECT_NE(rec.detail.find("retries exhausted"), std::string::npos)
        << rec.detail;
    r.run_until_idle();
    r.expect_conserved();
}

TEST(analysis_service, retry_backoff_schedule_is_deterministic) {
    // Two identical rigs, identical submissions: the seeded jitter must
    // give byte-identical retry counts and resolution times.
    auto run_one = [] {
        rig r;
        r.fabric.se_at(1, 1).set_degraded(true);
        r.service->submit(6, analysis::task_set{{100, 8}}, r.sim.now());
        r.service->submit(7, analysis::task_set{{150, 6}}, r.sim.now());
        r.sim.run(100'000);
        std::vector<std::tuple<request_outcome, cycle_t, std::uint32_t>>
            out;
        for (const auto& rec : r.service->records()) {
            out.emplace_back(rec.outcome, rec.finished_at, rec.retries);
        }
        return out;
    };
    EXPECT_EQ(run_one(), run_one());
}

TEST(analysis_service, result_cache_hits_and_invalidates_on_commit) {
    service_config cfg;
    cfg.workers = 1;
    rig r(cfg);
    // Near-unit utilization: infeasible, so resolving it commits nothing
    // and the cache entry stays valid for the repeat.
    const analysis::task_set heavy{{40, 39}};
    const auto a = r.service->submit(3, heavy, r.sim.now());
    r.run_until_done(a);
    EXPECT_EQ(r.service->record(a).outcome, request_outcome::rejected);
    EXPECT_FALSE(r.service->record(a).cache_hit);

    const auto b = r.service->submit(3, heavy, r.sim.now());
    r.run_until_done(b);
    EXPECT_EQ(r.service->record(b).outcome, request_outcome::rejected);
    EXPECT_TRUE(r.service->record(b).cache_hit);
    EXPECT_EQ(r.service->stats().cache_hits, 1u);

    // A committed reconfiguration supersedes every cached evaluation.
    const auto c =
        r.service->submit(9, analysis::task_set{{100, 8}}, r.sim.now());
    r.run_until_done(c);
    ASSERT_EQ(r.service->record(c).outcome, request_outcome::committed);
    const auto d = r.service->submit(3, heavy, r.sim.now());
    r.run_until_done(d);
    EXPECT_FALSE(r.service->record(d).cache_hit);
    EXPECT_EQ(r.service->stats().cache_invalidations, 1u);
    r.run_until_idle();
    r.expect_conserved();
}

TEST(analysis_service, breaker_trips_to_degraded_precision_and_recovers) {
    // Calibrate the slow-evaluation threshold between a cheap and an
    // expensive exact test, so the breaker FSM can be driven through
    // closed -> open -> half_open -> closed with real evaluations. The
    // cost ordering is measured, not assumed: exact-test work tracks the
    // Theorem 1 bound (bandwidth-utilization gap), not the task count.
    const std::vector<analysis::task_set> candidates = {
        {{200, 4}},
        {{100, 8}},
        {{100, 30}},
        {{100, 30}, {150, 30}},
        {{97, 1}, {89, 1}, {83, 1}, {79, 1}},
        {{40, 10}},
    };
    rig probe;
    analysis::task_set cheap;
    analysis::task_set dear;
    std::uint64_t cheap_cost = 0;
    std::uint64_t dear_cost = 0;
    for (const auto& tasks : candidates) {
        const auto eval = probe.mgr->evaluate(0, tasks);
        if (!eval.feasible) continue;
        const auto cost = eval.report.total_cycles;
        if (cheap.empty() || cost < cheap_cost) {
            cheap = tasks;
            cheap_cost = cost;
        }
        if (dear.empty() || cost > dear_cost) {
            dear = tasks;
            dear_cost = cost;
        }
    }
    ASSERT_GT(dear_cost, cheap_cost + 4) << "no usable cost spread";

    service_config cfg;
    cfg.workers = 1;
    cfg.breaker_trip_after = 2;
    cfg.breaker_slow_cycles = cheap_cost + (dear_cost - cheap_cost) / 2;
    // The cooldown must outlast the tripping evaluation itself: the
    // half-open transition is lazy (checked at dispatch), so a cooldown
    // shorter than dear_cost would already have elapsed by the time the
    // next request reaches a worker.
    cfg.breaker_cooldown = dear_cost * 20;
    cfg.breaker_close_after = 1;
    rig r(cfg);

    // Two consecutive over-budget exact evaluations trip the breaker.
    const auto a = r.service->submit(1, dear, r.sim.now());
    r.run_until_done(a);
    const auto b = r.service->submit(2, dear, r.sim.now());
    r.run_until_done(b);
    EXPECT_EQ(r.service->breaker(), breaker_state::open);
    EXPECT_EQ(r.service->stats().breaker_trips, 1u);

    // While open, requests are answered from the sufficient-test
    // portfolio -- degraded precision, reported on the record.
    const auto c = r.service->submit(3, dear, r.sim.now());
    r.run_until_done(c);
    EXPECT_TRUE(r.service->record(c).degraded);
    EXPECT_GT(r.service->stats().degraded_evals, 0u);

    // After the cooldown the next dispatch half-opens; a fast
    // full-precision probe closes the breaker again.
    r.sim.run(cfg.breaker_cooldown + 1);
    const auto d = r.service->submit(4, cheap, r.sim.now());
    r.run_until_done(d);
    EXPECT_EQ(r.service->breaker(), breaker_state::closed);
    EXPECT_FALSE(r.service->record(d).degraded);
    r.run_until_idle();
    r.expect_conserved();
}

TEST(analysis_service, worker_crash_requeues_in_flight_exactly_once) {
    service_config cfg;
    cfg.workers = 1;
    cfg.min_eval_cycles = 1'000;
    rig r(cfg);
    // Scripted crash mid-evaluation: [100, 150).
    r.service->install_faults(sim::fault_campaign(
        {{sim::fault_kind::worker_crash, 0, 100, 50}}));
    const auto id =
        r.service->submit(6, analysis::task_set{{100, 8}}, r.sim.now());
    r.run_until_done(id);
    const auto& rec = r.service->record(id);
    EXPECT_EQ(rec.outcome, request_outcome::committed);
    EXPECT_EQ(rec.requeues, 1u);
    EXPECT_EQ(r.service->stats().worker_crashes, 1u);
    EXPECT_EQ(r.service->stats().requeues, 1u);
    // The redo hit the result cache (no commit happened in between), so
    // the crash cost little beyond the window itself.
    EXPECT_TRUE(rec.cache_hit);
    // Exactly-once: a single manager transaction, a single commit.
    EXPECT_EQ(r.mgr->stats().committed, 1u);
    EXPECT_EQ(r.mgr->stats().submitted, 1u);
    r.run_until_idle();
    r.expect_conserved();
}

TEST(analysis_service, worker_stall_defers_completion_without_loss) {
    service_config cfg;
    cfg.workers = 1;
    cfg.min_eval_cycles = 1'000;
    rig r(cfg);
    r.service->install_faults(sim::fault_campaign(
        {{sim::fault_kind::worker_stall, 0, 100, 100}}));
    const auto id =
        r.service->submit(6, analysis::task_set{{100, 8}}, r.sim.now());
    r.run_until_done(id);
    EXPECT_EQ(r.service->record(id).outcome, request_outcome::committed);
    EXPECT_EQ(r.service->record(id).requeues, 0u);
    EXPECT_EQ(r.service->stats().worker_stall_cycles, 100u);
    r.run_until_idle();
    r.expect_conserved();
}

TEST(analysis_service, idle_worker_crash_is_counted_but_harmless) {
    service_config cfg;
    cfg.workers = 1;
    rig r(cfg);
    r.service->install_faults(sim::fault_campaign(
        {{sim::fault_kind::worker_crash, 0, 10, 20}}));
    r.sim.run(100); // the crash window passes with no work in flight
    EXPECT_EQ(r.service->stats().worker_crashes, 1u);
    EXPECT_EQ(r.service->stats().requeues, 0u);
    const auto id =
        r.service->submit(6, analysis::task_set{{100, 8}}, r.sim.now());
    r.run_until_done(id);
    EXPECT_EQ(r.service->record(id).outcome, request_outcome::committed);
}

TEST(analysis_service, conservation_holds_under_scripted_chaos) {
    service_config cfg;
    cfg.workers = 2;
    cfg.max_queue = 4;
    cfg.default_deadline = 4'000;
    rig r(cfg);
    // A dense seeded worker-fault campaign over the submission window.
    sim::fault_campaign_config fc;
    fc.seed = 77;
    fc.horizon = 20'000;
    fc.events_per_kcycle = 2.0;
    fc.se_stall_weight = 0.0;
    fc.link_drop_weight = 0.0;
    fc.dram_error_weight = 0.0;
    fc.backpressure_weight = 0.0;
    fc.worker_crash_weight = 1.0;
    fc.worker_stall_weight = 1.0;
    fc.n_workers = 2;
    const sim::fault_campaign campaign(fc);
    ASSERT_FALSE(campaign.empty());
    r.service->install_faults(campaign);

    for (std::uint32_t i = 0; i < 40; ++i) {
        r.sim.run(500);
        const std::uint32_t client = (i * 7) % 16;
        const std::uint32_t period = 80 + 10 * (i % 8);
        r.service->submit(client, analysis::task_set{{period, 4}},
                          r.sim.now());
    }
    r.run_until_idle(1'000'000);
    EXPECT_TRUE(r.service->idle());
    r.expect_conserved();
    EXPECT_EQ(r.service->stats().submitted, 40u);
    // The campaign actually exercised the fault paths.
    EXPECT_GT(r.service->stats().worker_crashes +
                  r.service->stats().worker_stall_cycles,
              0u);
}

} // namespace
} // namespace bluescale::svc
