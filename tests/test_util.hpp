// Shared test helpers.
#pragma once

#include <deque>

#include "interconnect/interconnect.hpp"

namespace bluescale::testing {

/// Minimal interconnect: unbounded acceptance, completes every request a
/// fixed number of cycles after injection, no memory behind it. Lets
/// client models be tested in isolation.
class loopback_interconnect : public interconnect {
public:
    explicit loopback_interconnect(std::uint32_t n_clients,
                                   cycle_t latency = 10)
        : interconnect("loopback", n_clients), latency_(latency) {}

    [[nodiscard]] bool client_can_accept(client_id_t) const override {
        return accepting_;
    }

    void client_push(client_id_t, mem_request r) override {
        note_injected();
        if (drop_remaining_ > 0) {
            // A lost request: injected but never answered (models a link
            // eating it; exercises client timeout recovery).
            --drop_remaining_;
            note_dropped();
            return;
        }
        if (fail_remaining_ > 0) {
            --fail_remaining_;
            r.failed = true;
        }
        pending_.push_back({now_ + latency_, std::move(r)});
    }

    [[nodiscard]] std::uint32_t depth_of(client_id_t) const override {
        return 1;
    }

    void tick(cycle_t now) override {
        now_ = now;
        while (!pending_.empty() && pending_.front().first <= now) {
            mem_request r = std::move(pending_.front().second);
            pending_.pop_front();
            r.complete_cycle = now;
            deliver_response_now(std::move(r));
        }
    }

    /// Toggles acceptance to test client backpressure handling.
    void set_accepting(bool accepting) { accepting_ = accepting; }

    /// The next `n` pushed requests are silently eaten (never answered).
    void drop_next(std::uint32_t n) { drop_remaining_ = n; }
    /// The next `n` pushed requests complete with `failed = true`
    /// (uncorrected-error responses).
    void fail_next(std::uint32_t n) { fail_remaining_ = n; }

    [[nodiscard]] std::size_t pending() const { return pending_.size(); }

private:
    cycle_t latency_;
    cycle_t now_ = 0;
    bool accepting_ = true;
    std::uint32_t drop_remaining_ = 0;
    std::uint32_t fail_remaining_ = 0;
    std::deque<std::pair<cycle_t, mem_request>> pending_;
};

} // namespace bluescale::testing
