#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/simulator.hpp"
#include "workload/dnn_accelerator.hpp"

namespace bluescale::workload {
namespace {

using bluescale::testing::loopback_interconnect;

struct rig {
    explicit rig(dnn_config cfg, cycle_t latency = 10)
        : net(1, latency), ha(0, cfg, net, 7) {
        net.set_response_handler(
            [this](mem_request&& r) { ha.on_response(std::move(r)); });
        sim.add(ha);
        sim.add(net);
    }
    loopback_interconnect net;
    dnn_accelerator ha;
    simulator sim;
};

dnn_config small_cfg() {
    dnn_config cfg;
    cfg.burst_requests = 8;
    cfg.compute_cycles = 50;
    cfg.layers = 3;
    cfg.window = 4;
    cfg.bandwidth_share = 1.0; // unthrottled unless a test says otherwise
    return cfg;
}

TEST(dnn_accelerator, issues_layer_bursts) {
    rig r(small_cfg());
    r.sim.run(5'000);
    EXPECT_GT(r.ha.requests_issued(), 8u);
    // Requests come in multiples of layers processed.
    EXPECT_EQ(r.ha.requests_issued() % 8, 0u);
}

TEST(dnn_accelerator, completes_inferences) {
    rig r(small_cfg());
    r.sim.run(20'000);
    EXPECT_GT(r.ha.inferences_completed(), 3u);
}

TEST(dnn_accelerator, window_bounds_outstanding) {
    // With a long loopback latency the HA can never exceed its window.
    auto cfg = small_cfg();
    cfg.burst_requests = 32;
    cfg.window = 4;
    rig r(cfg, /*latency=*/500);
    r.sim.run(400);
    EXPECT_LE(r.ha.requests_issued(), 4u);
}

TEST(dnn_accelerator, bandwidth_cap_throttles_issue_rate) {
    auto fast = small_cfg();
    auto slow = small_cfg();
    slow.bandwidth_share = 0.05; // 1 request per 80 cycles at unit 4
    rig r_fast(fast), r_slow(slow);
    r_fast.sim.run(20'000);
    r_slow.sim.run(20'000);
    EXPECT_LT(r_slow.ha.requests_issued(),
              r_fast.ha.requests_issued() / 2);
    // Cap: share / unit_cycles requests per cycle (+ bucket burst).
    EXPECT_LE(r_slow.ha.requests_issued(),
              static_cast<std::uint64_t>(20'000 * 0.05 / 4) + slow.window);
}

TEST(dnn_accelerator, compute_phase_pauses_traffic) {
    // One layer's worth of traffic, then a compute gap: over a horizon
    // shorter than burst+compute, at most one burst is issued.
    auto cfg = small_cfg();
    cfg.compute_cycles = 2000;
    rig r(cfg, /*latency=*/1);
    r.sim.run(1000);
    EXPECT_EQ(r.ha.requests_issued(), 8u);
}

TEST(dnn_accelerator, requests_are_reads_with_deadlines) {
    loopback_interconnect net(1, 1);
    dnn_accelerator ha(0, small_cfg(), net, 7);
    bool checked = false;
    net.set_response_handler([&](mem_request&& r) {
        EXPECT_EQ(r.op, mem_op::read);
        EXPECT_GT(r.abs_deadline, r.issue_cycle);
        checked = true;
        ha.on_response(std::move(r));
    });
    simulator sim;
    sim.add(ha);
    sim.add(net);
    sim.run(200);
    EXPECT_TRUE(checked);
}

} // namespace
} // namespace bluescale::workload
