#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/simulator.hpp"
#include "workload/automotive_profiles.hpp"
#include "workload/processor_client.hpp"

namespace bluescale::workload {
namespace {

using bluescale::testing::loopback_interconnect;

compute_task task(task_id_t id, cycle_t period, std::uint32_t compute,
                  std::uint32_t mem,
                  task_category cat = task_category::function) {
    compute_task t;
    t.name = "t" + std::to_string(id);
    t.id = id;
    t.category = cat;
    t.period = period;
    t.compute_cycles = compute;
    t.mem_requests = mem;
    return t;
}

struct rig {
    explicit rig(compute_task_set tasks, cycle_t latency = 10)
        : net(1, latency), proc(0, std::move(tasks), net, 7) {
        net.set_response_handler(
            [this](mem_request&& r) { proc.on_response(std::move(r)); });
        sim.add(proc);
        sim.add(net);
    }
    loopback_interconnect net;
    processor_client proc;
    simulator sim;
};

TEST(processor_client, completes_jobs_with_slack) {
    // Period 1000, compute 100, 2 requests at latency 10: finishes well
    // within the deadline.
    rig r({task(1, 1000, 100, 2)});
    r.sim.run(10'000);
    EXPECT_EQ(r.proc.stats(task_category::function).completed, 10u);
    EXPECT_EQ(r.proc.stats(task_category::function).missed, 0u);
}

TEST(processor_client, issues_declared_memory_requests) {
    rig r({task(1, 1000, 100, 5)});
    r.sim.run(10'000);
    EXPECT_EQ(r.proc.mem_requests_issued(), 50u);
}

TEST(processor_client, memory_stalls_extend_execution) {
    // Compute 100 + 10 requests x latency 100 ~= 1100 > period 500:
    // every job must miss.
    rig slow({task(1, 500, 100, 10)}, /*latency=*/100);
    slow.sim.run(20'000);
    const auto& s = slow.proc.stats(task_category::function);
    ASSERT_GT(s.completed, 0u);
    EXPECT_EQ(s.missed, s.completed);
}

TEST(processor_client, stats_split_by_category) {
    rig r({task(1, 2000, 100, 1, task_category::safety),
           task(2, 2000, 100, 1, task_category::function),
           task(3, 2000, 100, 1, task_category::interference)});
    r.sim.run(10'000);
    EXPECT_GT(r.proc.stats(task_category::safety).completed, 0u);
    EXPECT_GT(r.proc.stats(task_category::function).completed, 0u);
    EXPECT_GT(r.proc.stats(task_category::interference).completed, 0u);
}

TEST(processor_client, interference_misses_do_not_fail_app_criterion) {
    // Only an (infeasible) interference task runs: its misses must not
    // trip the paper's success criterion, which counts safety/function
    // tasks only.
    rig r({task(2, 300, 295, 2, task_category::interference)});
    r.sim.run(20'000);
    EXPECT_GT(r.proc.stats(task_category::interference).missed, 0u);
    EXPECT_FALSE(r.proc.app_deadline_missed());
}

TEST(processor_client, preemptive_edf_protects_short_period_task) {
    // A long job (compute 5000) runs alongside a short-period task
    // (period 500, compute 50). Preemptive EDF must keep the short task
    // meeting deadlines even while the long one executes.
    rig r({task(1, 20'000, 5000, 1), task(2, 500, 50, 1)});
    r.sim.run(40'000);
    const auto& s = r.proc.stats(task_category::function);
    EXPECT_EQ(s.missed, 0u) << "short-period task starved";
    EXPECT_GT(s.completed, 70u);
}

TEST(processor_client, finalize_counts_overdue_backlog) {
    // Loopback never responds within the horizon: the first job stalls
    // forever; later releases pile up past their deadlines.
    rig r({task(1, 500, 100, 1)}, /*latency=*/1'000'000);
    r.sim.run(5'000);
    EXPECT_EQ(r.proc.stats(task_category::function).completed, 0u);
    r.proc.finalize(r.sim.now());
    EXPECT_GT(r.proc.stats(task_category::function).missed, 0u);
    EXPECT_TRUE(r.proc.app_deadline_missed());
}

TEST(processor_client, requests_carry_job_deadline) {
    loopback_interconnect net(1, 1);
    bool checked = false;
    processor_client proc(0, {task(9, 700, 50, 1)}, net, 7);
    net.set_response_handler([&](mem_request&& r) {
        EXPECT_EQ(r.client, 0u);
        EXPECT_EQ(r.task, 9);
        EXPECT_EQ(r.abs_deadline % 700, 0u); // k*period deadlines
        checked = true;
        proc.on_response(std::move(r));
    });
    simulator sim;
    sim.add(proc);
    sim.add(net);
    sim.run(3000);
    EXPECT_TRUE(checked);
}

TEST(automotive_profiles, twenty_case_study_tasks) {
    rng r(3);
    const auto tasks = make_case_study_tasks(r, 16);
    ASSERT_EQ(tasks.size(), 20u);
    int safety = 0, function = 0;
    for (const auto& t : tasks) {
        if (t.category == task_category::safety) ++safety;
        if (t.category == task_category::function) ++function;
        EXPECT_GT(t.period, 0u);
        EXPECT_GT(t.compute_cycles, 0u);
        EXPECT_GE(t.mem_requests, 1u);
        EXPECT_LE(t.compute_utilization(), 0.36);
    }
    EXPECT_EQ(safety, 10);
    EXPECT_EQ(function, 10);
}

TEST(automotive_profiles, fixed_sets_have_ten_each) {
    EXPECT_EQ(automotive_safety_tasks().size(), 10u);
    EXPECT_EQ(automotive_function_tasks().size(), 10u);
    for (const auto& t : automotive_safety_tasks()) {
        EXPECT_EQ(t.category, task_category::safety);
    }
    for (const auto& t : automotive_function_tasks()) {
        EXPECT_EQ(t.category, task_category::function);
    }
}

TEST(automotive_profiles, interference_task_hits_target_utilization) {
    rng r(5);
    for (double u : {0.05, 0.1, 0.2}) {
        const auto t = make_interference_task(r, 42, u);
        EXPECT_NEAR(t.compute_utilization(), u, 0.01);
        EXPECT_EQ(t.category, task_category::interference);
    }
}

} // namespace
} // namespace bluescale::workload
