// Client-side retry/timeout recovery edge cases, driven through the
// loopback interconnect's drop/fail controls: lost requests are reissued
// after the timeout (with exponential backoff), exhausted budgets give
// the request up, a response racing its own timeout expiry loses (the
// client tick runs before delivery), and failed responses retry.
#include <gtest/gtest.h>

#include <vector>

#include "../test_util.hpp"
#include "sim/simulator.hpp"
#include "workload/processor_client.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::workload {
namespace {

using bluescale::testing::loopback_interconnect;

memory_task task(task_id_t id, std::uint64_t period_units,
                 std::uint32_t requests) {
    memory_task t;
    t.id = id;
    t.period_units = period_units;
    t.requests_per_job = requests;
    return t;
}

struct rig {
    explicit rig(memory_task_set tasks, traffic_gen_config cfg,
                 cycle_t loopback_latency = 10)
        : net(1, loopback_latency),
          gen(0, std::move(tasks), net, /*seed=*/7, cfg) {
        net.set_response_handler(
            [this](mem_request&& r) { gen.on_response(std::move(r)); });
        sim.add(gen);
        sim.add(net);
    }
    loopback_interconnect net;
    traffic_generator gen;
    simulator sim;
};

traffic_gen_config retry_config(cycle_t timeout, std::uint32_t retries,
                                std::uint32_t backoff = 2) {
    traffic_gen_config cfg;
    cfg.retry_timeout_cycles = timeout;
    cfg.max_retries = retries;
    cfg.retry_backoff_mult = backoff;
    return cfg;
}

TEST(retry, dropped_request_reissued_and_completed) {
    rig r({task(1, 250, 1)}, retry_config(/*timeout=*/50, /*retries=*/3));
    r.net.drop_next(1);
    r.sim.run(1000);
    EXPECT_EQ(r.gen.stats().issued(), 1u);
    EXPECT_EQ(r.gen.stats().timeouts(), 1u);
    EXPECT_EQ(r.gen.stats().retries(), 1u);
    EXPECT_EQ(r.gen.stats().completed(), 1u);
    EXPECT_EQ(r.gen.stats().retry_exhausted(), 0u);
    EXPECT_EQ(r.gen.outstanding(), 0u);
}

TEST(retry, latency_of_retried_request_spans_recovery) {
    rig r({task(1, 500, 1)}, retry_config(100, 3), /*latency=*/10);
    r.net.drop_next(1);
    r.sim.run(2000);
    ASSERT_EQ(r.gen.stats().completed(), 1u);
    // Issued at 0, reissued at 100, completed at ~110: the sample keeps
    // the first attempt's issue cycle, so it spans the full recovery
    // (far beyond the loopback's 10-cycle service latency).
    EXPECT_GE(r.gen.stats().latency_cycles().max(), 100.0);
}

TEST(retry, exhausted_budget_gives_request_up) {
    rig r({task(1, 2500, 1)}, retry_config(50, /*retries=*/2));
    r.net.drop_next(3); // first attempt + both retries lost
    r.sim.run(10'000);
    // Timeouts: two expiries trigger retries, the third exhausts.
    EXPECT_EQ(r.gen.stats().retries(), 2u);
    EXPECT_EQ(r.gen.stats().timeouts(), 3u);
    EXPECT_EQ(r.gen.stats().retry_exhausted(), 1u);
    EXPECT_EQ(r.gen.stats().completed(), 0u);
    // The exhausted request stays outstanding until finalize() counts it
    // (end past the job's implicit deadline of 10'000 cycles).
    r.gen.finalize(10'500);
    EXPECT_EQ(r.gen.stats().abandoned(), 1u);
    EXPECT_EQ(r.gen.stats().missed(), 1u);
}

TEST(retry, backoff_doubles_each_window) {
    // timeout 50, backoff x2: expiries at 50, then 50+100=150, then
    // 150+200=350 (exhaustion). All three attempts are dropped.
    rig r({task(1, 2500, 1)}, retry_config(50, 2, /*backoff=*/2));
    r.net.drop_next(3);
    r.sim.run(149);
    EXPECT_EQ(r.gen.stats().retries(), 1u); // second expiry not yet due
    r.sim.run(100);
    EXPECT_EQ(r.gen.stats().retries(), 2u);
    EXPECT_EQ(r.gen.stats().retry_exhausted(), 0u);
    r.sim.run(200);
    EXPECT_EQ(r.gen.stats().retry_exhausted(), 1u);
}

TEST(retry, response_exactly_at_timeout_loses_the_race) {
    // Loopback latency == timeout: the response lands the same cycle the
    // timeout expires. Clients tick before the interconnect delivers, so
    // the reissue wins and the original response is dropped as stale.
    rig r({task(1, 500, 1)}, retry_config(/*timeout=*/10, 3),
          /*latency=*/10);
    r.sim.run(2000);
    EXPECT_EQ(r.gen.stats().timeouts(), 1u);
    EXPECT_EQ(r.gen.stats().retries(), 1u);
    EXPECT_EQ(r.gen.stats().stale_responses(), 1u);
    EXPECT_EQ(r.gen.stats().completed(), 1u); // the reissue completes
}

TEST(retry, response_inside_timeout_window_needs_no_recovery) {
    rig r({task(1, 500, 1)}, retry_config(/*timeout=*/11, 3),
          /*latency=*/10);
    r.sim.run(2000);
    EXPECT_EQ(r.gen.stats().timeouts(), 0u);
    EXPECT_EQ(r.gen.stats().retries(), 0u);
    EXPECT_EQ(r.gen.stats().stale_responses(), 0u);
    EXPECT_EQ(r.gen.stats().completed(), 1u);
}

TEST(retry, failed_response_retries_then_succeeds) {
    rig r({task(1, 250, 1)}, retry_config(50, 3));
    r.net.fail_next(1);
    r.sim.run(1000);
    EXPECT_EQ(r.gen.stats().failed_responses(), 1u);
    EXPECT_EQ(r.gen.stats().retries(), 1u);
    EXPECT_EQ(r.gen.stats().completed(), 1u);
}

TEST(retry, persistent_failures_exhaust_budget) {
    rig r({task(1, 2500, 1)}, retry_config(50, /*retries=*/2));
    r.net.fail_next(3);
    r.sim.run(10'000);
    EXPECT_EQ(r.gen.stats().failed_responses(), 3u);
    EXPECT_EQ(r.gen.stats().retries(), 2u);
    EXPECT_EQ(r.gen.stats().retry_exhausted(), 1u);
    EXPECT_EQ(r.gen.stats().completed(), 0u);
    EXPECT_EQ(r.gen.stats().abandoned(), 1u);
    EXPECT_EQ(r.gen.outstanding(), 0u);
}

TEST(retry, disabled_recovery_leaves_lost_request_outstanding) {
    rig r({task(1, 250, 1)}, traffic_gen_config{});
    r.net.drop_next(1);
    r.sim.run(900); // one release; its implicit deadline is cycle 1000
    EXPECT_EQ(r.gen.stats().timeouts(), 0u);
    EXPECT_EQ(r.gen.stats().retries(), 0u);
    EXPECT_EQ(r.gen.stats().completed(), 0u);
    EXPECT_EQ(r.gen.outstanding(), 1u);
    r.gen.finalize(2000);
    EXPECT_EQ(r.gen.stats().abandoned(), 1u);
}

// --- processor_client (blocking cache-miss path) ------------------------

compute_task_set one_compute_task() {
    compute_task t;
    t.id = 1;
    t.category = task_category::function;
    t.period = 2000;
    t.compute_cycles = 40;
    t.mem_requests = 2;
    return {t};
}

struct proc_rig {
    explicit proc_rig(processor_retry_config retry,
                      cycle_t loopback_latency = 10)
        : net(1, loopback_latency),
          cpu(0, one_compute_task(), net, /*seed=*/5, retry) {
        net.set_response_handler(
            [this](mem_request&& r) { cpu.on_response(std::move(r)); });
        sim.add(cpu);
        sim.add(net);
    }
    loopback_interconnect net;
    processor_client cpu;
    simulator sim;
};

TEST(retry, stalled_core_reissues_after_timeout) {
    proc_rig r({.timeout_cycles = 50, .max_retries = 3});
    r.net.drop_next(1);
    r.sim.run(2000);
    EXPECT_EQ(r.cpu.retry_stats().timeouts, 1u);
    EXPECT_EQ(r.cpu.retry_stats().retries, 1u);
    EXPECT_EQ(r.cpu.retry_stats().aborted, 0u);
    EXPECT_GT(r.cpu.stats(task_category::function).completed, 0u);
}

TEST(retry, aborted_access_unblocks_the_core) {
    proc_rig r({.timeout_cycles = 20, .max_retries = 2});
    // Eat everything: every access must eventually abort, yet the core
    // keeps finishing jobs instead of hanging forever.
    r.net.drop_next(1'000'000);
    r.sim.run(4000);
    EXPECT_GT(r.cpu.retry_stats().aborted, 0u);
    EXPECT_EQ(r.cpu.retry_stats().retries,
              2 * r.cpu.retry_stats().aborted);
    EXPECT_GT(r.cpu.stats(task_category::function).completed, 0u);
}

TEST(retry, blocking_core_without_recovery_hangs_on_loss) {
    proc_rig r({}); // timeout 0: legacy wait-forever semantics
    r.net.drop_next(1);
    r.sim.run(4000);
    EXPECT_EQ(r.cpu.retry_stats().timeouts, 0u);
    EXPECT_EQ(r.cpu.stats(task_category::function).completed, 0u);
}

} // namespace
} // namespace bluescale::workload
