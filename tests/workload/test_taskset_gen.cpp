#include <gtest/gtest.h>

#include <numeric>

#include "workload/taskset_gen.hpp"

namespace bluescale::workload {
namespace {

TEST(uunifast, sums_to_target) {
    rng r(1);
    for (int trial = 0; trial < 20; ++trial) {
        const auto u = uunifast(r, 8, 0.75);
        const double sum = std::accumulate(u.begin(), u.end(), 0.0);
        EXPECT_NEAR(sum, 0.75, 1e-9);
    }
}

TEST(uunifast, all_nonnegative) {
    rng r(2);
    for (int trial = 0; trial < 50; ++trial) {
        for (double v : uunifast(r, 5, 0.9)) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 0.9 + 1e-12);
        }
    }
}

TEST(uunifast, single_task_gets_everything) {
    rng r(3);
    const auto u = uunifast(r, 1, 0.42);
    ASSERT_EQ(u.size(), 1u);
    EXPECT_DOUBLE_EQ(u[0], 0.42);
}

TEST(uunifast, zero_tasks) {
    rng r(4);
    EXPECT_TRUE(uunifast(r, 0, 0.5).empty());
}

TEST(make_taskset, respects_count_and_period_range) {
    rng r(5);
    taskset_params p;
    p.n_tasks = 6;
    p.min_period_units = 50;
    p.max_period_units = 500;
    p.total_utilization = 0.3;
    const auto ts = make_taskset(r, p);
    ASSERT_EQ(ts.size(), 6u);
    for (const auto& t : ts) {
        EXPECT_GE(t.period_units, 50u);
        EXPECT_GE(t.requests_per_job, 1u);
        EXPECT_LE(t.requests_per_job, t.period_units);
    }
}

TEST(make_taskset, realized_utilization_tracks_target) {
    rng r(6);
    taskset_params p;
    p.n_tasks = 4;
    p.total_utilization = 0.05;
    double total = 0.0;
    const int trials = 50;
    for (int i = 0; i < trials; ++i) {
        total += utilization(make_taskset(r, p));
    }
    EXPECT_NEAR(total / trials, 0.05, 0.015);
}

TEST(make_taskset, tiny_utilizations_stretch_periods) {
    // The 64-client regression: per-task utilization so small that
    // round(u*T) == 0 must not inflate realized utilization.
    rng r(7);
    taskset_params p;
    p.n_tasks = 4;
    p.total_utilization = 0.012; // ~0.003 per task
    double total = 0.0;
    const int trials = 100;
    for (int i = 0; i < trials; ++i) {
        total += utilization(make_taskset(r, p));
    }
    EXPECT_LT(total / trials, 0.02);
}

TEST(make_taskset, task_ids_unique_and_nonzero) {
    rng r(8);
    taskset_params p;
    p.n_tasks = 8;
    const auto ts = make_taskset(r, p);
    std::set<task_id_t> ids;
    for (const auto& t : ts) {
        EXPECT_NE(t.id, 0);
        ids.insert(t.id);
    }
    EXPECT_EQ(ids.size(), ts.size());
}

TEST(make_client_tasksets, total_utilization_in_range) {
    rng r(9);
    for (int i = 0; i < 10; ++i) {
        const auto sets = make_client_tasksets(r, 16, 0.7, 0.9);
        ASSERT_EQ(sets.size(), 16u);
        double total = 0.0;
        for (const auto& s : sets) total += utilization(s);
        EXPECT_GT(total, 0.55);
        EXPECT_LT(total, 1.0);
    }
}

TEST(make_client_tasksets, sixty_four_clients_stay_under_one) {
    rng r(10);
    for (int i = 0; i < 10; ++i) {
        const auto sets = make_client_tasksets(r, 64, 0.7, 0.9);
        double total = 0.0;
        for (const auto& s : sets) total += utilization(s);
        EXPECT_LT(total, 1.0) << "trial " << i;
    }
}

TEST(memory_task, conversions) {
    memory_task t;
    t.period_units = 100;
    t.requests_per_job = 5;
    EXPECT_EQ(t.period_cycles(4), 400u);
    EXPECT_DOUBLE_EQ(t.utilization(), 0.05);
    const auto rt = t.as_rt_task();
    EXPECT_EQ(rt.period, 100u);
    EXPECT_EQ(rt.wcet, 5u);
}

TEST(memory_task, to_rt_tasks_maps_all) {
    rng r(11);
    taskset_params p;
    p.n_tasks = 5;
    const auto ts = make_taskset(r, p);
    const auto rt = to_rt_tasks(ts);
    ASSERT_EQ(rt.size(), ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_EQ(rt[i].period, ts[i].period_units);
        EXPECT_EQ(rt[i].wcet, ts[i].requests_per_job);
    }
}

TEST(make_taskset, deterministic_given_seed) {
    taskset_params p;
    p.n_tasks = 4;
    rng r1(42), r2(42);
    const auto a = make_taskset(r1, p);
    const auto b = make_taskset(r2, p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].period_units, b[i].period_units);
        EXPECT_EQ(a[i].requests_per_job, b[i].requests_per_job);
        EXPECT_EQ(a[i].writes, b[i].writes);
    }
}

} // namespace
} // namespace bluescale::workload
