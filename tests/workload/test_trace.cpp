#include <gtest/gtest.h>

#include <cstdio>

#include "../test_util.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace bluescale::workload {
namespace {

using bluescale::testing::loopback_interconnect;

trace make_trace() {
    return {
        {10, 0, 1, 0x1000, mem_op::read, 200},
        {12, 1, 2, 0x2000, mem_op::write, 300},
        {20, 0, 1, 0x1040, mem_op::read, 220},
        {25, 1, 2, 0x2040, mem_op::read, 320},
    };
}

TEST(trace_io, round_trips_through_csv) {
    const std::string path = ::testing::TempDir() + "trace_test.csv";
    const trace original = make_trace();
    ASSERT_TRUE(save_trace(path, original));
    const trace loaded = load_trace(path);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].issue_cycle, original[i].issue_cycle);
        EXPECT_EQ(loaded[i].client, original[i].client);
        EXPECT_EQ(loaded[i].task, original[i].task);
        EXPECT_EQ(loaded[i].addr, original[i].addr);
        EXPECT_EQ(loaded[i].op, original[i].op);
        EXPECT_EQ(loaded[i].abs_deadline, original[i].abs_deadline);
    }
    std::remove(path.c_str());
}

TEST(trace_io, load_missing_file_is_empty) {
    EXPECT_TRUE(load_trace("/nonexistent/trace.csv").empty());
}

TEST(trace_io, from_requests_sorts_by_issue_cycle) {
    std::vector<mem_request> done(2);
    done[0].issue_cycle = 50;
    done[0].client = 1;
    done[1].issue_cycle = 10;
    done[1].client = 0;
    const trace t = trace_from_requests(done);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].issue_cycle, 10u);
    EXPECT_EQ(t[1].issue_cycle, 50u);
}

TEST(trace_player, replays_only_its_client_slice) {
    loopback_interconnect net(2, 5);
    trace_player p0(0, make_trace(), net);
    trace_player p1(1, make_trace(), net);
    net.set_response_handler([&](mem_request&& r) {
        (r.client == 0 ? p0 : p1).on_response(std::move(r));
    });
    simulator sim;
    sim.add(p0);
    sim.add(p1);
    sim.add(net);
    sim.run(200);
    EXPECT_EQ(p0.stats().issued(), 2u);
    EXPECT_EQ(p1.stats().issued(), 2u);
    EXPECT_TRUE(p0.done());
    EXPECT_TRUE(p1.done());
    EXPECT_EQ(p0.stats().completed(), 2u);
}

TEST(trace_player, honors_recorded_issue_cycles) {
    loopback_interconnect net(1, 1);
    trace t{{100, 0, 1, 0, mem_op::read, 10'000}};
    trace_player p(0, t, net);
    net.set_response_handler(
        [&](mem_request&& r) { p.on_response(std::move(r)); });
    simulator sim;
    sim.add(p);
    sim.add(net);
    sim.run(50);
    EXPECT_EQ(p.stats().issued(), 0u) << "issued before its recorded cycle";
    sim.run(100);
    EXPECT_EQ(p.stats().issued(), 1u);
}

TEST(trace_player, detects_deadline_misses) {
    loopback_interconnect net(1, 500);
    trace t{{0, 0, 1, 0, mem_op::read, 100}};
    trace_player p(0, t, net);
    net.set_response_handler(
        [&](mem_request&& r) { p.on_response(std::move(r)); });
    simulator sim;
    sim.add(p);
    sim.add(net);
    sim.run(1000);
    EXPECT_EQ(p.stats().missed(), 1u);
}

TEST(trace_player, finalize_accounts_unreplayed_records) {
    loopback_interconnect net(1, 1);
    net.set_accepting(false);
    trace t{{0, 0, 1, 0, mem_op::read, 100}};
    trace_player p(0, t, net);
    simulator sim;
    sim.add(p);
    sim.add(net);
    sim.run(500);
    p.finalize(sim.now());
    EXPECT_EQ(p.stats().missed(), 1u);
    EXPECT_EQ(p.stats().abandoned(), 1u);
}

} // namespace
} // namespace bluescale::workload
