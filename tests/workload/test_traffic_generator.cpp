#include <gtest/gtest.h>

#include <vector>

#include "../test_util.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic_generator.hpp"

namespace bluescale::workload {
namespace {

using bluescale::testing::loopback_interconnect;

memory_task task(task_id_t id, std::uint64_t period_units,
                 std::uint32_t requests) {
    memory_task t;
    t.id = id;
    t.period_units = period_units;
    t.requests_per_job = requests;
    return t;
}

struct rig {
    explicit rig(memory_task_set tasks, cycle_t loopback_latency = 10)
        : net(1, loopback_latency),
          gen(0, std::move(tasks), net, /*seed=*/7) {
        net.set_response_handler(
            [this](mem_request&& r) { gen.on_response(std::move(r)); });
        sim.add(gen);
        sim.add(net);
    }
    loopback_interconnect net;
    traffic_generator gen;
    simulator sim;
};

TEST(traffic_generator, issues_expected_request_count) {
    // Period 25 units = 100 cycles, 2 requests per job, run 1000 cycles:
    // 10 jobs -> 20 requests.
    rig r({task(1, 25, 2)});
    r.sim.run(1000);
    EXPECT_EQ(r.gen.stats().issued(), 20u);
}

TEST(traffic_generator, all_responses_complete_under_light_load) {
    rig r({task(1, 50, 1)});
    r.sim.run(2000);
    EXPECT_EQ(r.gen.stats().completed(), r.gen.stats().issued());
    EXPECT_EQ(r.gen.stats().missed(), 0u);
}

TEST(traffic_generator, latency_measured_against_loopback) {
    rig r({task(1, 100, 1)}, /*loopback_latency=*/17);
    r.sim.run(4000);
    ASSERT_GT(r.gen.stats().completed(), 0u);
    // Loopback latency within a couple of cycles of tick-order skew.
    EXPECT_NEAR(r.gen.stats().latency_cycles().mean(), 17.0, 2.0);
}

TEST(traffic_generator, deadline_misses_detected) {
    // Period 2 units = 8 cycles but loopback takes 50: every request
    // misses its implicit deadline.
    rig r({task(1, 2, 1)}, /*loopback_latency=*/50);
    r.sim.run(1000);
    ASSERT_GT(r.gen.stats().completed(), 0u);
    EXPECT_EQ(r.gen.stats().missed(), r.gen.stats().completed());
}

TEST(traffic_generator, edf_orders_across_tasks) {
    // Two tasks; the shorter-period task's requests must carry earlier
    // deadlines and thus issue first when both have pending jobs.
    loopback_interconnect net(1, 1);
    std::vector<cycle_t> seen_deadlines;
    traffic_generator gen(
        0, {task(1, 100, 3), task(2, 25, 3)}, net, 7);
    net.set_response_handler([&](mem_request&& r) {
        seen_deadlines.push_back(r.abs_deadline);
        gen.on_response(std::move(r));
    });
    simulator sim;
    sim.add(gen);
    sim.add(net);
    sim.run(30); // within the first job of each task
    ASSERT_GE(seen_deadlines.size(), 4u);
    // First issued requests: task 2 (deadline 100 cycles) before task 1
    // (deadline 400 cycles).
    EXPECT_LT(seen_deadlines.front(), 400u);
}

TEST(traffic_generator, respects_backpressure) {
    rig r({task(1, 10, 5)});
    r.net.set_accepting(false);
    r.sim.run(500);
    EXPECT_EQ(r.gen.stats().issued(), 0u);
    EXPECT_GT(r.gen.backlog(), 0u);
    r.net.set_accepting(true);
    r.sim.run(500);
    EXPECT_GT(r.gen.stats().issued(), 0u);
}

TEST(traffic_generator, respects_outstanding_cap) {
    traffic_gen_config cfg;
    cfg.max_outstanding = 2;
    loopback_interconnect net(1, /*latency=*/1000); // responses far away
    traffic_generator gen(0, {task(1, 10, 50)}, net, 7, cfg);
    net.set_response_handler(
        [&](mem_request&& r) { gen.on_response(std::move(r)); });
    simulator sim;
    sim.add(gen);
    sim.add(net);
    sim.run(200);
    EXPECT_EQ(gen.stats().issued(), 2u);
    EXPECT_EQ(gen.outstanding(), 2u);
}

TEST(traffic_generator, finalize_counts_stranded_requests_as_missed) {
    loopback_interconnect net(1, /*latency=*/100000);
    traffic_generator gen(0, {task(1, 10, 1)}, net, 7);
    net.set_response_handler(
        [&](mem_request&& r) { gen.on_response(std::move(r)); });
    simulator sim;
    sim.add(gen);
    sim.add(net);
    sim.run(1000);
    EXPECT_EQ(gen.stats().missed(), 0u); // nothing completed yet
    gen.finalize(sim.now());
    EXPECT_GT(gen.stats().missed(), 0u);
    EXPECT_EQ(gen.stats().missed(), gen.stats().abandoned());
}

TEST(traffic_generator, requests_carry_client_and_task_ids) {
    loopback_interconnect net(1, 1);
    bool checked = false;
    traffic_generator gen(3 % 1 == 0 ? 0 : 0, {task(9, 50, 1)}, net, 7);
    net.set_response_handler([&](mem_request&& r) {
        EXPECT_EQ(r.client, 0u);
        EXPECT_EQ(r.task, 9);
        EXPECT_EQ(r.level_deadline, r.abs_deadline);
        checked = true;
        gen.on_response(std::move(r));
    });
    simulator sim;
    sim.add(gen);
    sim.add(net);
    sim.run(500);
    EXPECT_TRUE(checked);
}

TEST(traffic_generator, request_ids_unique) {
    loopback_interconnect net(1, 1);
    std::set<request_id_t> ids;
    traffic_generator gen(0, {task(1, 10, 3), task(2, 15, 2)}, net, 7);
    net.set_response_handler([&](mem_request&& r) {
        EXPECT_TRUE(ids.insert(r.id).second) << "duplicate request id";
        gen.on_response(std::move(r));
    });
    simulator sim;
    sim.add(gen);
    sim.add(net);
    sim.run(2000);
    EXPECT_GT(ids.size(), 100u);
}

TEST(traffic_generator, blocking_stat_zero_on_contention_free_path) {
    rig r({task(1, 50, 2)});
    r.sim.run(2000);
    EXPECT_DOUBLE_EQ(r.gen.stats().blocking_cycles().mean(), 0.0);
}

TEST(traffic_generator, writes_flag_propagates) {
    memory_task t = task(1, 50, 1);
    t.writes = true;
    loopback_interconnect net(1, 1);
    bool saw_write = false;
    traffic_generator gen(0, {t}, net, 7);
    net.set_response_handler([&](mem_request&& r) {
        saw_write = saw_write || r.op == mem_op::write;
        gen.on_response(std::move(r));
    });
    simulator sim;
    sim.add(gen);
    sim.add(net);
    sim.run(500);
    EXPECT_TRUE(saw_write);
}

} // namespace
} // namespace bluescale::workload
