#include "callgraph.hpp"

#include <algorithm>
#include <deque>

namespace detlint {

namespace {

// Keyword subset that matters for telling definitions and calls apart:
// control-flow heads look like `name (...)` and declaration specifiers
// look like type names. Kept local to the graph builder -- rules.cpp has
// its own (larger) set for its own heuristics.
const std::set<std::string>& non_callable_keywords() {
    static const std::set<std::string> k = {
        "alignas",  "alignof",   "assert",    "auto",      "bool",
        "break",    "case",      "catch",     "char",      "class",
        "const",    "consteval", "constexpr", "constinit", "continue",
        "decltype", "default",   "delete",    "do",        "double",
        "else",     "enum",      "explicit",  "export",    "extern",
        "false",    "float",     "for",       "friend",    "goto",
        "if",       "inline",    "int",       "long",      "mutable",
        "namespace","new",       "noexcept",  "nullptr",   "operator",
        "private",  "protected", "public",    "register",  "requires",
        "return",   "short",     "signed",    "sizeof",    "static",
        "static_assert",         "static_cast",
        "struct",   "switch",    "template",  "this",      "throw",
        "true",     "try",       "typedef",   "typeid",    "typename",
        "union",    "unsigned",  "using",     "virtual",   "void",
        "volatile", "while",
    };
    return k;
}

/// The function names that put a body on the simulation hot path: the
/// per-cycle component protocol plus the maintenance engine's activation
/// hooks. `commit` alone is ambiguous (core::reconfig_manager::commit is
/// a control-plane transaction, amortized over reconfiguration events,
/// not a clock edge), so commit roots additionally require the enclosing
/// class to be a clocked component (it also defines tick) or one of the
/// bounded queue classes.
const std::set<std::string>& root_names() {
    static const std::set<std::string> k = {
        "tick", "commit", "next_event", "advance", "on_activation",
    };
    return k;
}

/// Bounded queue classes whose push/pop/extract (and commit) run inside
/// component ticks: their methods are hot even though the names are
/// generic.
const std::set<std::string>& queue_classes() {
    static const std::set<std::string> k = {
        "latched_queue", "random_access_buffer", "fixed_queue",
    };
    return k;
}

const std::set<std::string>& queue_methods() {
    static const std::set<std::string> k = {"push", "pop", "extract"};
    return k;
}

/// Directories whose function definitions participate in the hot set.
/// The model tree (sim / core / interconnect / mem / workload) owns the
/// per-cycle contract. Everything else is a sanctioned boundary by
/// design: src/obs/ handles are the O(1) metric idiom, src/analysis/ and
/// src/hwcost/ run at admission/selection time, src/svc//src/harness/
/// /bench//examples//tests/ drive simulations rather than run inside
/// them. Name-resolved edges into those trees therefore stop. The
/// fixtures/hotpath/ entry makes the rule family testable: lint fixtures
/// live outside src/ but must still be markable.
[[nodiscard]] bool hot_eligible(const std::string& path) {
    static const char* const dirs[] = {
        "src/sim/",      "src/core/", "src/interconnect/",
        "src/mem/",      "src/workload/", "fixtures/hotpath",
    };
    return std::any_of(std::begin(dirs), std::end(dirs),
                       [&](const char* d) {
                           return path.find(d) != std::string::npos;
                       });
}

[[nodiscard]] bool is_punct(const token& t, std::string_view text) {
    return t.kind == tok_kind::punct && t.text == text;
}

[[nodiscard]] bool is_kw(const token& t, std::string_view text) {
    return t.kind == tok_kind::identifier && t.text == text;
}

/// Skips a balanced template-argument list; `i` indexes the `<`.
[[nodiscard]] std::size_t skip_template_args(const std::vector<token>& toks,
                                             std::size_t i) {
    int depth = 0;
    while (i < toks.size()) {
        const token& t = toks[i];
        if (is_punct(t, "<")) {
            ++depth;
        } else if (is_punct(t, ">")) {
            if (--depth == 0) return i + 1;
        } else if (is_punct(t, ">>")) {
            depth -= 2;
            if (depth <= 0) return i + 1;
        } else if (is_punct(t, ";") || is_punct(t, "{")) {
            return i; // not template args after all; bail at a boundary
        }
        ++i;
    }
    return i;
}

/// Tags the `{` tokens that open class/struct/union bodies with the class
/// name, so the definition harvest can recover the enclosing class of
/// inline member functions.
[[nodiscard]] std::map<std::size_t, std::string>
tag_class_braces(const std::vector<token>& toks) {
    std::map<std::size_t, std::string> tags;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const token& t = toks[i];
        if (!is_kw(t, "class") && !is_kw(t, "struct") && !is_kw(t, "union"))
            continue;
        // `template <class T, ...>` parameters are not class declarations.
        if (i > 0 && (is_punct(toks[i - 1], "<") ||
                      is_punct(toks[i - 1], ","))) {
            continue;
        }
        // The class name is the first plain identifier after the keyword
        // (skips `enum class`, stops on anonymous structs).
        std::size_t j = i + 1;
        while (j < toks.size() && toks[j].kind == tok_kind::identifier &&
               non_callable_keywords().count(toks[j].text) != 0) {
            ++j;
        }
        if (j >= toks.size() || toks[j].kind != tok_kind::identifier)
            continue;
        const std::string name = toks[j].text;
        // Scan for the body `{`; a `;` (forward declaration), `=` (alias),
        // or `(` (function returning an elaborated type) ends the attempt.
        // Base-clause template arguments are skipped so their `>` tokens
        // cannot be mistaken for terminators.
        for (std::size_t k = j + 1; k < toks.size();) {
            const token& c = toks[k];
            if (is_punct(c, "<")) {
                k = skip_template_args(toks, k);
                continue;
            }
            if (is_punct(c, ";") || is_punct(c, "=") || is_punct(c, "(") ||
                is_punct(c, ")") || is_punct(c, ">")) {
                break;
            }
            if (is_punct(c, "{")) {
                tags[k] = name;
                break;
            }
            ++k;
        }
    }
    return tags;
}

/// Locates the body range of a candidate definition whose name is at
/// `name_idx` and whose `(` is at `name_idx + 1`. Returns true and fills
/// [body_begin, body_end) when this is a definition; a `;` before any
/// body brace means declaration/call. Constructor member-initializer
/// braces (`: count_{0}`) are recognized and skipped so the real body is
/// found.
[[nodiscard]] bool find_body(const std::vector<token>& toks,
                             std::size_t name_idx, std::size_t* body_begin,
                             std::size_t* body_end) {
    std::size_t j = name_idx + 1;
    int parens = 0;
    for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], "(")) {
            ++parens;
        } else if (is_punct(toks[j], ")")) {
            if (--parens == 0) break;
        }
    }
    if (j >= toks.size()) return false;
    std::size_t body = j + 1;
    bool found = false;
    // Signature-tail scan state: an unmatched `)` or a top-level `,`
    // before a ctor-initializer `:` or trailing-return `->` means the
    // candidate was a call inside a larger expression (`if (q.empty()) {`
    // would otherwise adopt the if-body), not a definition.
    int tail_parens = 0;
    bool tail_open = false; // past `:` or `->`: arbitrary tokens allowed
    while (body < toks.size()) {
        const token& t = toks[body];
        if (is_punct(t, ";")) break;
        if (is_punct(t, "(")) {
            ++tail_parens;
        } else if (is_punct(t, ")")) {
            if (tail_parens == 0) return false;
            --tail_parens;
        } else if (is_punct(t, ":") || is_punct(t, "->")) {
            tail_open = true;
        } else if (is_punct(t, ",") && tail_parens == 0 && !tail_open) {
            return false;
        }
        if (is_punct(t, "{")) {
            // `{` directly after an identifier that is not a body-adjacent
            // specifier is a member-initializer brace-init (`count_{0}`):
            // skip its balanced braces and keep looking for the body.
            const token& p = toks[body - 1];
            const bool init_brace =
                p.kind == tok_kind::identifier &&
                !(is_kw(p, "const") || is_kw(p, "override") ||
                  is_kw(p, "final") || is_kw(p, "noexcept") ||
                  is_kw(p, "mutable") || is_kw(p, "try"));
            if (init_brace) {
                int braces = 0;
                while (body < toks.size()) {
                    if (is_punct(toks[body], "{")) ++braces;
                    if (is_punct(toks[body], "}") && --braces == 0) break;
                    ++body;
                }
                ++body;
                continue;
            }
            found = true;
            break;
        }
        ++body;
    }
    if (!found) return false;
    std::size_t end = body;
    int braces = 0;
    for (; end < toks.size(); ++end) {
        if (is_punct(toks[end], "{")) {
            ++braces;
        } else if (is_punct(toks[end], "}")) {
            if (--braces == 0) break;
        }
    }
    *body_begin = body;
    *body_end = std::min(end + 1, toks.size());
    return true;
}

/// Harvests the call sites inside [begin, end): `name(...)`,
/// `name<...>(...)`, `x.name(...)`, `X::name(...)` and `&name`.
void harvest_calls(const std::vector<token>& toks, std::size_t begin,
                   std::size_t end, std::vector<call_site>& out) {
    for (std::size_t i = begin; i < end; ++i) {
        const token& t = toks[i];
        if (t.kind != tok_kind::identifier ||
            non_callable_keywords().count(t.text) != 0) {
            continue;
        }
        call_site cs;
        cs.name = t.text;
        if (i > begin) {
            const token& p = toks[i - 1];
            if (is_punct(p, ".") || is_punct(p, "->")) {
                cs.kind = call_kind::member;
            } else if (is_punct(p, "::") && i >= 2 &&
                       toks[i - 2].kind == tok_kind::identifier) {
                cs.kind = call_kind::qualified;
                cs.qualifier = toks[i - 2].text;
            } else if (is_punct(p, "&")) {
                // Address-of escape: resolution keeps only names that
                // actually denote a known function definition, so `a & b`
                // arithmetic noise dies there.
                cs.kind = call_kind::address;
                out.push_back(std::move(cs));
                continue;
            }
        }
        std::size_t after = i + 1;
        if (after < end && is_punct(toks[after], "<")) {
            // Possible explicit template arguments: helper<int>(x).
            const std::size_t past = skip_template_args(toks, after);
            if (past < end && past != after && is_punct(toks[past], "(")) {
                after = past;
            }
        }
        if (after < end && is_punct(toks[after], "(")) {
            out.push_back(std::move(cs));
        }
    }
}

} // namespace

void call_graph::add_file(const lexed_file& file) {
    const auto& toks = file.tokens;
    const auto class_tags = tag_class_braces(toks);
    // Class-scope stack: every `{` pushes (its class tag or ""), every `}`
    // pops; the innermost non-empty entry is the enclosing class.
    std::vector<std::string> scopes;
    const auto current_class = [&]() -> std::string {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            if (!it->empty()) return *it;
        }
        return std::string();
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const token& t = toks[i];
        if (is_punct(t, "{")) {
            const auto tag = class_tags.find(i);
            scopes.push_back(tag == class_tags.end() ? std::string()
                                                     : tag->second);
            continue;
        }
        if (is_punct(t, "}")) {
            if (!scopes.empty()) scopes.pop_back();
            continue;
        }
        if (t.kind != tok_kind::identifier ||
            non_callable_keywords().count(t.text) != 0) {
            continue;
        }
        if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
        std::size_t body_begin = 0;
        std::size_t body_end = 0;
        if (!find_body(toks, i, &body_begin, &body_end)) continue;
        function_def def;
        def.name = t.text;
        def.path = file.path;
        def.line = t.line;
        def.body_begin = body_begin;
        def.body_end = body_end;
        if (i >= 2 && is_punct(toks[i - 1], "::") &&
            toks[i - 2].kind == tok_kind::identifier) {
            def.qualifier = toks[i - 2].text; // out-of-line X::name(...)
        } else {
            def.qualifier = current_class();
        }
        harvest_calls(toks, body_begin, body_end, def.calls);
        const std::size_t idx = defs_.size();
        by_name_[def.name].push_back(idx);
        by_path_[def.path].push_back(idx);
        defs_.push_back(std::move(def));
        // Do NOT skip to body_end: nested local definitions and the scope
        // stack both need every brace token walked.
    }
}

void call_graph::resolve_calls_of(std::size_t def_idx,
                                  std::vector<std::size_t>& out) const {
    for (const call_site& cs : defs_[def_idx].calls) {
        if (cs.kind == call_kind::qualified && cs.qualifier == "std")
            continue; // std::foo never names project code
        const auto it = by_name_.find(cs.name);
        if (it == by_name_.end()) continue;
        // Qualified calls prefer exact enclosing-class matches; only when
        // the qualifier is unknown (a namespace, a base class we did not
        // see) do they fall back to every definition of the name.
        bool exact_exists = false;
        if (cs.kind == call_kind::qualified) {
            exact_exists = std::any_of(
                it->second.begin(), it->second.end(), [&](std::size_t d) {
                    return defs_[d].qualifier == cs.qualifier;
                });
        }
        for (const std::size_t target : it->second) {
            const function_def& td = defs_[target];
            switch (cs.kind) {
            case call_kind::member:
                // x.foo(...) cannot reach a free function named foo.
                if (td.qualifier.empty()) continue;
                break;
            case call_kind::qualified:
                if (exact_exists && td.qualifier != cs.qualifier) continue;
                break;
            case call_kind::bare:
            case call_kind::address:
                break;
            }
            out.push_back(target);
        }
    }
}

void call_graph::finalize() {
    // Classes that define tick() -- the clocked components whose commit()
    // is a per-cycle clock edge (see root_names()).
    std::set<std::string> ticking_classes;
    const auto tick_it = by_name_.find("tick");
    if (tick_it != by_name_.end()) {
        for (const std::size_t d : tick_it->second) {
            ticking_classes.insert(defs_[d].qualifier);
        }
    }
    std::deque<std::size_t> work;
    for (std::size_t i = 0; i < defs_.size(); ++i) {
        function_def& def = defs_[i];
        if (!hot_eligible(def.path)) continue;
        bool root = false;
        if (root_names().count(def.name) != 0) {
            root = def.name != "commit" ||
                   queue_classes().count(def.qualifier) != 0 ||
                   ticking_classes.count(def.qualifier) != 0;
        } else if (queue_methods().count(def.name) != 0 &&
                   queue_classes().count(def.qualifier) != 0) {
            root = true;
        }
        if (!root) continue;
        def.hot = true;
        def.reached_via = "hot-path root '" +
                          (def.qualifier.empty()
                               ? def.name
                               : def.qualifier + "::" + def.name) +
                          "'";
        work.push_back(i);
    }
    // BFS over name-resolved edges; the hot flag doubles as the visited
    // set, so recursive cycles terminate.
    std::vector<std::size_t> targets;
    while (!work.empty()) {
        const std::size_t cur = work.front();
        work.pop_front();
        targets.clear();
        resolve_calls_of(cur, targets);
        for (const std::size_t tgt : targets) {
            function_def& td = defs_[tgt];
            if (td.hot || !hot_eligible(td.path)) continue;
            td.hot = true;
            // Keep provenance one hop deep plus the originating root, so
            // deep chains stay readable in findings.
            const std::string& pv = defs_[cur].reached_via;
            const std::size_t root_part = pv.find("hot-path root");
            td.reached_via =
                "called from '" + defs_[cur].name + "' (" + defs_[cur].path +
                ":" + std::to_string(defs_[cur].line) + "), " +
                (root_part == std::string::npos ? pv : pv.substr(root_part));
            work.push_back(tgt);
        }
    }
}

std::vector<const function_def*>
call_graph::hot_defs_in(const std::string& path) const {
    std::vector<const function_def*> out;
    const auto it = by_path_.find(path);
    if (it == by_path_.end()) return out;
    for (const std::size_t idx : it->second) {
        if (defs_[idx].hot) out.push_back(&defs_[idx]);
    }
    return out;
}

} // namespace detlint
