// Approximate intra-project call graph built from detlint's token stream.
//
// detlint has no semantic analysis, so the graph is resolved by NAME, not
// by type: a call site `foo(...)` edges to every project function
// definition named `foo` (overloads collapse into one conservative node
// set), and `x.foo(...)` / `x->foo(...)` edges to every MEMBER definition
// named `foo` -- we do not know x's type, but we do know the target is a
// member, which keeps free functions that share a method's name out of
// the hot set. Qualified calls `X::foo(...)` prefer definitions whose
// enclosing class is X. `&foo` (address-of a known function name) is
// treated as a call so work dispatched through function pointers stays
// visible. Lambdas defined inside a function body are token-contained in
// that body, so their code is analyzed as part of the enclosing function.
// Recursive cycles are handled by the visited set of the reachability
// walk. Template definitions are plain named definitions here --
// instantiation does not exist at token level.
//
// The graph exists for ONE question: which function bodies are reachable
// from the simulation hot-path roots (tick / commit / next_event /
// advance / on_activation, and push / pop / extract on the bounded queue
// classes), i.e. which code must honour the O(1)-per-tick contract that
// BlueScale's predictability claim rests on. The hotpath-* rules in
// rules.cpp run only inside that reachable set.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace detlint {

/// How a call site names its target; drives resolution precision.
enum class call_kind : std::uint8_t {
    bare,      ///< foo(...) -- resolves to every definition named foo
    member,    ///< x.foo(...) / x->foo(...) -- member definitions only
    qualified, ///< X::foo(...) -- definitions enclosed by class X first
    address,   ///< &foo -- function-pointer escape, treated as a call
};

struct call_site {
    std::string name;
    std::string qualifier; ///< qualified calls only: the X in X::foo
    call_kind kind = call_kind::bare;
};

struct function_def {
    std::string name;
    /// Enclosing class for inline members, or the X of an out-of-line
    /// `X::name(...)` definition; empty for free functions.
    std::string qualifier;
    std::string path;
    std::uint32_t line = 0;
    /// Token index range [body_begin, body_end) of the `{...}` body in
    /// the defining file's token stream.
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    std::vector<call_site> calls;
    /// Hot-set state, filled by finalize().
    bool hot = false;
    /// Human-readable provenance: "root 'tick' (src/core/x.cpp:81)" or
    /// the chain hop it was reached through. Empty while not hot.
    std::string reached_via;
};

class call_graph {
public:
    /// Phase-1 hook: harvests every function definition (with class
    /// qualifier where recoverable) and its call sites from one file.
    void add_file(const lexed_file& file);

    /// Phase-1.5 hook: marks the hot-path roots and walks name-resolved
    /// call edges to compute the reachable hot set. Must run after every
    /// add_file() and before hot_defs_in().
    void finalize();

    /// Hot definitions whose body lives in `path`, body-order. Valid
    /// after finalize().
    [[nodiscard]] std::vector<const function_def*>
    hot_defs_in(const std::string& path) const;

    [[nodiscard]] const std::vector<function_def>& defs() const {
        return defs_;
    }

private:
    void resolve_calls_of(std::size_t def_idx,
                          std::vector<std::size_t>& out) const;

    std::vector<function_def> defs_;
    /// name -> indices into defs_ (all definitions sharing the name).
    std::map<std::string, std::vector<std::size_t>> by_name_;
    /// path -> indices into defs_, in harvest (token) order.
    std::map<std::string, std::vector<std::size_t>> by_path_;
};

} // namespace detlint
