#include "engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace detlint {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
           ext == ".h" || ext == ".hh" || ext == ".hxx";
}

/// Per-file suppression table parsed from `detlint:allow(...)` comments.
struct suppressions {
    std::set<std::string> file_wide;
    std::map<std::uint32_t, std::set<std::string>> by_line;

    [[nodiscard]] bool covers(const finding& f) const {
        if (file_wide.count(f.rule) != 0 || file_wide.count("*") != 0) {
            return true;
        }
        const auto it = by_line.find(f.line);
        if (it == by_line.end()) return false;
        return it->second.count(f.rule) != 0 || it->second.count("*") != 0;
    }
};

/// Parses one comment body for `detlint:allow(...)` / `allow-file(...)`.
/// Grammar:  detlint:allow(rule[,rule...])[: justification]
void parse_allow(const comment& com, suppressions& sup) {
    const std::string& s = com.text;
    std::size_t pos = 0;
    while ((pos = s.find("detlint:allow", pos)) != std::string::npos) {
        std::size_t p = pos + std::string("detlint:allow").size();
        bool file_wide = false;
        if (s.compare(p, 5, "-file") == 0) {
            file_wide = true;
            p += 5;
        }
        if (p >= s.size() || s[p] != '(') {
            pos = p;
            continue;
        }
        const std::size_t close_paren = s.find(')', p);
        if (close_paren == std::string::npos) break;
        std::string list = s.substr(p + 1, close_paren - p - 1);
        std::replace(list.begin(), list.end(), ',', ' ');
        std::istringstream iss(list);
        std::string rule;
        while (iss >> rule) {
            if (file_wide) {
                sup.file_wide.insert(rule);
            } else if (com.own_line) {
                // A standalone comment blesses the line after it (block
                // comments: the line after their last line).
                sup.by_line[com.last_line + 1].insert(rule);
            } else {
                sup.by_line[com.first_line].insert(rule);
            }
        }
        pos = close_paren;
    }
}

[[nodiscard]] suppressions parse_suppressions(const lexed_file& file) {
    suppressions sup;
    for (const comment& com : file.comments) parse_allow(com, sup);
    return sup;
}

[[nodiscard]] scan_result run(const std::vector<lexed_file>& lexed,
                              const scan_options& opts) {
    tree_context ctx;
    for (const lexed_file& f : lexed) collect(f, ctx);
    finalize(ctx); // resolve the call graph's hot set before checking
    scan_result result;
    result.files_scanned = lexed.size();
    for (const lexed_file& f : lexed) {
        std::vector<finding> raw;
        check(f, ctx, opts.rules, raw);
        const suppressions sup = parse_suppressions(f);
        for (finding& fd : raw) {
            if (!opts.ignore_suppressions && sup.covers(fd)) {
                result.suppressed.push_back(std::move(fd));
            } else {
                result.findings.push_back(std::move(fd));
            }
        }
    }
    return result;
}

} // namespace

std::vector<std::string>
collect_files(const std::vector<std::string>& paths,
              const std::vector<std::string>& excludes) {
    const auto excluded = [&](const std::string& file) {
        return std::any_of(excludes.begin(), excludes.end(),
                           [&](const std::string& sub) {
                               return file.find(sub) != std::string::npos;
                           });
    };
    std::vector<std::string> files;
    for (const std::string& p : paths) {
        const fs::path path(p);
        if (fs::is_directory(path)) {
            for (const auto& entry :
                 fs::recursive_directory_iterator(path)) {
                if (entry.is_regular_file() && lintable(entry.path()) &&
                    !excluded(entry.path().string())) {
                    files.push_back(entry.path().string());
                }
            }
        } else if (fs::is_regular_file(path) && !excluded(p)) {
            files.push_back(path.string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

scan_result scan_files(const std::vector<std::string>& files,
                       const scan_options& opts) {
    std::vector<lexed_file> lexed;
    lexed.reserve(files.size());
    for (const std::string& path : files) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        lexed.push_back(lex(path, buf.str()));
    }
    return run(lexed, opts);
}

scan_result
scan_sources(const std::vector<std::pair<std::string, std::string>>& sources,
             const scan_options& opts) {
    std::vector<lexed_file> lexed;
    lexed.reserve(sources.size());
    for (const auto& [path, text] : sources) lexed.push_back(lex(path, text));
    return run(lexed, opts);
}

void print_findings(std::ostream& out, const std::vector<finding>& findings) {
    for (const finding& f : findings) {
        out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
            << "\n";
    }
}

} // namespace detlint
