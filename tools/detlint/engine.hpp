// detlint engine: walks the requested paths, runs the two rule phases,
// applies `// detlint:allow(<rule>)` suppressions and reports findings.
#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"

namespace detlint {

struct scan_options {
    /// Rule ids to run; empty = all rules.
    std::set<std::string> rules;
    /// When true, suppressed findings are reported too (fixture debugging).
    bool ignore_suppressions = false;
};

struct scan_result {
    std::vector<finding> findings;   ///< unsuppressed (reported) findings
    std::vector<finding> suppressed; ///< silenced by detlint:allow
    std::size_t files_scanned = 0;
};

/// Expands `paths` (files or directories, recursed for C++ sources) into a
/// sorted file list. Sorting keeps reports byte-identical run to run --
/// directory iteration order is as unspecified as the containers detlint
/// polices. Files whose path contains any substring in `excludes` are
/// dropped (the gate uses this to skip tests/lint/fixtures, whose files
/// are seeded violations by design).
[[nodiscard]] std::vector<std::string>
collect_files(const std::vector<std::string>& paths,
              const std::vector<std::string>& excludes = {});

/// Lints `files` (two-phase: collect facts, then check).
[[nodiscard]] scan_result scan_files(const std::vector<std::string>& files,
                                     const scan_options& opts);

/// Lints in-memory source text (used by the fixture tests).
[[nodiscard]] scan_result
scan_sources(const std::vector<std::pair<std::string, std::string>>& sources,
             const scan_options& opts);

/// Prints findings as `file:line: [rule-id] message`, one per line.
void print_findings(std::ostream& out, const std::vector<finding>& findings);

} // namespace detlint
