#include "lexer.hpp"

#include <array>
#include <cctype>
#include <string_view>

namespace detlint {

namespace {

[[nodiscard]] bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool digit(char c) {
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Multi-character punctuators detlint's rules care about. Longest match
// first; anything else falls back to a single-character token.
constexpr std::array<std::string_view, 22> k_multi_punct = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "^=",
};

class cursor {
public:
    explicit cursor(const std::string& text) : text_(text) {}

    [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
    [[nodiscard]] char peek(std::size_t ahead = 0) const {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
    }
    [[nodiscard]] std::uint32_t line() const { return line_; }
    [[nodiscard]] std::size_t pos() const { return pos_; }
    [[nodiscard]] bool at_line_start() const { return only_ws_on_line_; }

    char advance() {
        const char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            only_ws_on_line_ = true;
        } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
            only_ws_on_line_ = false;
        }
        return c;
    }

    [[nodiscard]] std::string_view slice(std::size_t from) const {
        return std::string_view(text_).substr(from, pos_ - from);
    }

private:
    const std::string& text_;
    std::size_t pos_ = 0;
    std::uint32_t line_ = 1;
    bool only_ws_on_line_ = true;
};

void lex_line_comment(cursor& c, lexed_file& out, bool own_line) {
    comment com;
    com.first_line = com.last_line = c.line();
    com.own_line = own_line;
    c.advance(); // '/'
    c.advance(); // '/'
    const std::size_t start = c.pos();
    while (!c.eof() && c.peek() != '\n') c.advance();
    com.text = std::string(c.slice(start));
    out.comments.push_back(std::move(com));
}

void lex_string(cursor& c, lexed_file& out) {
    token t;
    t.kind = tok_kind::string_lit;
    t.line = c.line();
    // Raw string literal: R"delim( ... )delim"
    if (c.peek() == 'R' && c.peek(1) == '"') {
        c.advance(); // R
        c.advance(); // "
        std::string delim;
        while (!c.eof() && c.peek() != '(') delim += c.advance();
        if (!c.eof()) c.advance(); // '('
        const std::string closer = ")" + delim + "\"";
        std::string body;
        while (!c.eof()) {
            bool at_close = c.peek() == ')';
            for (std::size_t i = 0; at_close && i < closer.size(); ++i) {
                if (c.peek(i) != closer[i]) at_close = false;
            }
            if (at_close) {
                for (std::size_t i = 0; i < closer.size(); ++i) c.advance();
                break;
            }
            body += c.advance();
        }
        t.text = std::move(body);
        out.tokens.push_back(std::move(t));
        return;
    }
    c.advance(); // opening quote
    std::string body;
    while (!c.eof() && c.peek() != '"' && c.peek() != '\n') {
        if (c.peek() == '\\') {
            body += c.advance();
            if (!c.eof()) body += c.advance();
            continue;
        }
        body += c.advance();
    }
    if (!c.eof() && c.peek() == '"') c.advance();
    t.text = std::move(body);
    out.tokens.push_back(std::move(t));
}

void lex_char(cursor& c, lexed_file& out) {
    token t;
    t.kind = tok_kind::char_lit;
    t.line = c.line();
    c.advance(); // opening quote
    std::string body;
    while (!c.eof() && c.peek() != '\'' && c.peek() != '\n') {
        if (c.peek() == '\\') {
            body += c.advance();
            if (!c.eof()) body += c.advance();
            continue;
        }
        body += c.advance();
    }
    if (!c.eof() && c.peek() == '\'') c.advance();
    t.text = std::move(body);
    out.tokens.push_back(std::move(t));
}

void lex_number(cursor& c, lexed_file& out) {
    token t;
    t.kind = tok_kind::number;
    t.line = c.line();
    const std::size_t start = c.pos();
    const bool hex = c.peek() == '0' && (c.peek(1) == 'x' || c.peek(1) == 'X');
    bool is_float = false;
    while (!c.eof()) {
        const char ch = c.peek();
        if (digit(ch) || ch == '\'' || ident_char(ch)) {
            if (!hex && (ch == 'e' || ch == 'E') &&
                (c.peek(1) == '+' || c.peek(1) == '-')) {
                is_float = true;
                c.advance(); // e
                c.advance(); // sign
                continue;
            }
            if (hex && (ch == 'p' || ch == 'P') &&
                (c.peek(1) == '+' || c.peek(1) == '-')) {
                is_float = true;
                c.advance();
                c.advance();
                continue;
            }
            if (!hex && (ch == 'f' || ch == 'F')) is_float = true;
            if (!hex && (ch == 'e' || ch == 'E')) is_float = true;
            c.advance();
            continue;
        }
        if (ch == '.') {
            is_float = true;
            c.advance();
            continue;
        }
        break;
    }
    t.text = std::string(c.slice(start));
    // Hex floats require a 'p' exponent; 0x1f is an integer.
    t.is_float = hex ? t.text.find('p') != std::string::npos ||
                           t.text.find('P') != std::string::npos
                     : is_float;
    out.tokens.push_back(std::move(t));
}

void lex_pp_directive(cursor& c, lexed_file& out) {
    token t;
    t.kind = tok_kind::pp_directive;
    t.line = c.line();
    std::string text;
    while (!c.eof() && c.peek() != '\n') {
        if (c.peek() == '\\' && c.peek(1) == '\n') {
            c.advance();
            c.advance();
            text += ' ';
            continue;
        }
        // A comment ends the directive's interesting text.
        if (c.peek() == '/' && (c.peek(1) == '/' || c.peek(1) == '*')) break;
        text += c.advance();
    }
    // Normalize interior whitespace runs so rules can string-match.
    std::string norm;
    bool ws = false;
    for (const char ch : text) {
        if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
            ws = true;
            continue;
        }
        if (ws && !norm.empty()) norm += ' ';
        ws = false;
        norm += ch;
    }
    t.text = std::move(norm);
    out.tokens.push_back(std::move(t));
}

} // namespace

lexed_file lex(std::string path, const std::string& text) {
    lexed_file out;
    out.path = std::move(path);
    cursor c(text);
    while (!c.eof()) {
        const char ch = c.peek();
        if (ch == '/' && c.peek(1) == '/') {
            lex_line_comment(c, out, c.at_line_start());
            continue;
        }
        if (ch == '/' && c.peek(1) == '*') {
            const bool own = c.at_line_start();
            // Re-lex block comments with correct body capture.
            comment com;
            com.first_line = c.line();
            com.own_line = own;
            c.advance();
            c.advance();
            const std::size_t start = c.pos();
            std::size_t len = 0;
            while (!c.eof() && !(c.peek() == '*' && c.peek(1) == '/')) {
                c.advance();
                ++len;
            }
            com.text = text.substr(start, len);
            if (!c.eof()) {
                c.advance();
                c.advance();
            }
            com.last_line = c.line();
            out.comments.push_back(std::move(com));
            continue;
        }
        if (ch == '#' && c.at_line_start()) {
            lex_pp_directive(c, out);
            continue;
        }
        if (ch == '"' || (ch == 'R' && c.peek(1) == '"')) {
            lex_string(c, out);
            continue;
        }
        if (ch == '\'') {
            lex_char(c, out);
            continue;
        }
        if (digit(ch) || (ch == '.' && digit(c.peek(1)))) {
            lex_number(c, out);
            continue;
        }
        if (ident_start(ch)) {
            token t;
            t.kind = tok_kind::identifier;
            t.line = c.line();
            const std::size_t start = c.pos();
            while (!c.eof() && ident_char(c.peek())) c.advance();
            t.text = std::string(c.slice(start));
            out.tokens.push_back(std::move(t));
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
            c.advance();
            continue;
        }
        token t;
        t.kind = tok_kind::punct;
        t.line = c.line();
        bool matched = false;
        for (const auto mp : k_multi_punct) {
            bool ok = true;
            for (std::size_t i = 0; i < mp.size(); ++i) {
                if (c.peek(i) != mp[i]) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                for (std::size_t i = 0; i < mp.size(); ++i) c.advance();
                t.text = std::string(mp);
                matched = true;
                break;
            }
        }
        if (!matched) t.text = std::string(1, c.advance());
        out.tokens.push_back(std::move(t));
    }
    out.n_lines = c.line();
    return out;
}

} // namespace detlint
