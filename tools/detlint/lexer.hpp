// Lightweight C++ tokenizer for detlint.
//
// This is deliberately NOT a conforming C++ lexer: detlint's rules only
// need identifiers, literals, punctuation and comments with accurate line
// numbers. Preprocessor directives are captured as single tokens (so
// `#pragma once` is visible to the include-guard rule without dragging a
// preprocessor in), and comments are kept on the side so the suppression
// parser can find `detlint:allow(...)` annotations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace detlint {

enum class tok_kind : std::uint8_t {
    identifier,
    number,
    string_lit,
    char_lit,
    punct,
    pp_directive, ///< one token per directive, text without continuations
};

struct token {
    tok_kind kind = tok_kind::punct;
    std::string text;
    std::uint32_t line = 0; ///< 1-based line of the token's first character
    bool is_float = false;  ///< numbers only: has '.', exponent or f suffix
};

struct comment {
    std::uint32_t first_line = 0;
    std::uint32_t last_line = 0; ///< == first_line for `//` comments
    bool own_line = false;       ///< only whitespace precedes it on its line
    std::string text;            ///< body without the comment markers
};

struct lexed_file {
    std::string path;
    std::vector<token> tokens; ///< comments excluded, source order
    std::vector<comment> comments;
    std::uint32_t n_lines = 0;
};

/// Tokenizes `text` (the contents of `path`). Never throws on malformed
/// input: unterminated literals/comments simply end at EOF.
[[nodiscard]] lexed_file lex(std::string path, const std::string& text);

} // namespace detlint
