// detlint -- BlueScale's determinism & real-time-safety lint.
//
//   $ detlint [options] <file-or-dir>...
//
// Scans C++ sources for project-specific hazards that no generic compiler
// warning catches: nondeterminism sources (wall clocks, unseeded entropy),
// unordered-container iteration feeding deterministic output, lossy
// float/cycle arithmetic, libc-shadowing identifiers, stat emission that
// bypasses the obs layer, and missing include guards. Exit status:
// 0 = clean, 1 = unsuppressed findings, 2 = usage or I/O error.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine.hpp"
#include "sarif.hpp"

namespace {

void usage(std::ostream& out) {
    out << "usage: detlint [options] <file-or-dir>...\n"
           "  --rules=<id,...>    run only the listed rules\n"
           "  --list-rules        print the rule catalogue and exit\n"
           "  --no-suppress       report findings even when detlint:allow'd\n"
           "  --exclude=<substr>  skip files whose path contains <substr>\n"
           "                      (repeatable)\n"
           "  --sarif <file>      also write findings as SARIF 2.1.0 (for\n"
           "                      GitHub code-scanning PR annotations)\n"
           "  --quiet             suppress the summary line on stderr\n"
           "suppress a finding with  // detlint:allow(<rule>): reason\n"
           "(same line or the line above; detlint:allow-file(<rule>) for a "
           "whole file)\n";
}

} // namespace

int main(int argc, char** argv) {
    detlint::scan_options opts;
    std::vector<std::string> paths;
    std::vector<std::string> excludes;
    std::string sarif_path;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto& r : detlint::all_rules()) {
                std::cout << r.id << "\n    " << r.summary << "\n";
            }
            return 0;
        }
        if (arg == "--no-suppress") {
            opts.ignore_suppressions = true;
            continue;
        }
        if (arg == "--quiet") {
            quiet = true;
            continue;
        }
        if (arg.rfind("--exclude=", 0) == 0) {
            excludes.push_back(arg.substr(std::strlen("--exclude=")));
            continue;
        }
        if (arg.rfind("--sarif=", 0) == 0) {
            sarif_path = arg.substr(std::strlen("--sarif="));
            continue;
        }
        if (arg == "--sarif") {
            if (i + 1 >= argc) {
                std::cerr << "detlint: --sarif needs a file argument\n";
                return 2;
            }
            sarif_path = argv[++i];
            continue;
        }
        if (arg.rfind("--rules=", 0) == 0) {
            std::string list = arg.substr(std::strlen("--rules="));
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string id =
                    list.substr(start, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - start);
                if (!id.empty()) {
                    if (!detlint::known_rule(id)) {
                        std::cerr << "detlint: unknown rule '" << id
                                  << "' (see --list-rules)\n";
                        return 2;
                    }
                    opts.rules.insert(id);
                }
                if (comma == std::string::npos) break;
                start = comma + 1;
            }
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            std::cerr << "detlint: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
        paths.push_back(arg);
    }
    if (paths.empty()) {
        usage(std::cerr);
        return 2;
    }

    const std::vector<std::string> files =
        detlint::collect_files(paths, excludes);
    if (files.empty()) {
        std::cerr << "detlint: no C++ sources under the given paths\n";
        return 2;
    }
    const detlint::scan_result result = detlint::scan_files(files, opts);
    detlint::print_findings(std::cout, result.findings);
    if (!sarif_path.empty()) {
        std::ofstream sarif_out(sarif_path);
        if (!sarif_out) {
            std::cerr << "detlint: cannot write SARIF to '" << sarif_path
                      << "'\n";
            return 2;
        }
        // Repository-relative URIs: GitHub code scanning only attaches
        // annotations when the artifact URI matches a checked-out path.
        detlint::write_sarif(sarif_out, result.findings,
                             std::filesystem::current_path().string());
    }
    if (!quiet) {
        std::cerr << "detlint: " << result.files_scanned << " file(s), "
                  << result.findings.size() << " finding(s), "
                  << result.suppressed.size() << " suppressed\n";
    }
    return result.findings.empty() ? 0 : 1;
}
