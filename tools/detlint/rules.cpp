#include "rules.hpp"

#include <algorithm>
#include <array>
#include <string_view>

namespace detlint {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers

const std::set<std::string>& keywords() {
    static const std::set<std::string> k = {
        "alignas",  "alignof",  "auto",     "bool",      "break",
        "case",     "catch",    "char",     "class",     "co_await",
        "co_return","co_yield", "const",    "consteval", "constexpr",
        "constinit","continue", "decltype", "default",   "delete",
        "do",       "double",   "else",     "enum",      "explicit",
        "export",   "extern",   "false",    "float",     "for",
        "friend",   "goto",     "if",       "inline",    "int",
        "long",     "mutable",  "namespace","new",       "noexcept",
        "nullptr",  "operator", "private",  "protected", "public",
        "register", "requires", "return",   "short",     "signed",
        "sizeof",   "static",   "struct",   "switch",    "template",
        "this",     "throw",    "true",     "try",       "typedef",
        "typeid",   "typename", "union",    "unsigned",  "using",
        "virtual",  "void",     "volatile", "while",
    };
    return k;
}

// Built-in type keywords that can end a declaration's type part.
const std::set<std::string>& type_keywords() {
    static const std::set<std::string> k = {
        "auto", "bool", "char",  "double",   "float", "int",
        "long", "short","signed","unsigned", "size_t",
    };
    return k;
}

[[nodiscard]] bool is_ident(const token& t, std::string_view text) {
    return t.kind == tok_kind::identifier && t.text == text;
}

[[nodiscard]] bool is_punct(const token& t, std::string_view text) {
    return t.kind == tok_kind::punct && t.text == text;
}

[[nodiscard]] bool is_header(const std::string& path) {
    const auto dot = path.rfind('.');
    if (dot == std::string::npos) return false;
    const std::string_view ext = std::string_view(path).substr(dot);
    return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx";
}

[[nodiscard]] bool path_contains(const std::string& path,
                                 std::string_view needle) {
    return path.find(needle) != std::string::npos;
}

/// Token index ranges [body_open, one-past-body_close) of function bodies
/// whose name satisfies `match`. Handles inline member definitions
/// (`cycle_t next_event(cycle_t now) const override { ... }`) and
/// out-of-line ones (`cycle_t widget::next_event(cycle_t now) const {`);
/// a `;` between the parameter list and any `{` marks a declaration (or a
/// *call* inside a larger statement) and yields no range.
template <typename Pred>
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
function_body_ranges(const lexed_file& file, Pred match) {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const token& t = toks[i];
        if (t.kind != tok_kind::identifier || !match(t.text)) continue;
        if (!is_punct(toks[i + 1], "(")) continue;
        // Match the parameter list's closing paren.
        std::size_t j = i + 1;
        int parens = 0;
        for (; j < toks.size(); ++j) {
            if (is_punct(toks[j], "(")) {
                ++parens;
            } else if (is_punct(toks[j], ")")) {
                if (--parens == 0) break;
            }
        }
        if (j >= toks.size()) continue;
        // `const override {` etc. may intervene; a `;` first means this
        // was a declaration (or a call inside a larger statement).
        std::size_t body = j + 1;
        bool found_body = false;
        for (; body < toks.size(); ++body) {
            if (is_punct(toks[body], ";")) break;
            if (is_punct(toks[body], "{")) {
                found_body = true;
                break;
            }
        }
        if (!found_body) {
            i = j;
            continue;
        }
        std::size_t end = body;
        int braces = 0;
        for (; end < toks.size(); ++end) {
            if (is_punct(toks[end], "{")) {
                ++braces;
            } else if (is_punct(toks[end], "}")) {
                if (--braces == 0) break;
            }
        }
        out.emplace_back(body, end + 1);
        i = end;
    }
    return out;
}

/// Skips a balanced template-argument list. `i` must index the `<` token;
/// returns the index one past the matching `>`. `>>` closes two levels.
[[nodiscard]] std::size_t skip_template_args(const std::vector<token>& toks,
                                             std::size_t i) {
    int depth = 0;
    while (i < toks.size()) {
        const token& t = toks[i];
        if (is_punct(t, "<")) {
            ++depth;
        } else if (is_punct(t, ">")) {
            if (--depth == 0) return i + 1;
        } else if (is_punct(t, ">>")) {
            depth -= 2;
            if (depth <= 0) return i + 1;
        } else if (is_punct(t, ";") || is_punct(t, "{")) {
            return i; // malformed; bail out at a statement boundary
        }
        ++i;
    }
    return i;
}

/// After a type's template close (or type name), finds the declared
/// identifier: skips cv/ref/pointer decoration and nested-name pieces
/// (`::iterator` etc). Returns npos-like toks.size() when the next
/// meaningful token is not a plain declared name.
[[nodiscard]] std::size_t declared_name_index(const std::vector<token>& toks,
                                              std::size_t i) {
    while (i < toks.size()) {
        const token& t = toks[i];
        if (is_punct(t, "&") || is_punct(t, "*") || is_punct(t, "&&") ||
            is_ident(t, "const") || is_ident(t, "constexpr") ||
            is_ident(t, "static") || is_ident(t, "mutable")) {
            ++i;
            continue;
        }
        if (is_punct(t, "::")) {
            // `std::unordered_map<...>::iterator it` -- step over the
            // nested name and keep looking for the declared identifier.
            i += 2;
            continue;
        }
        if (t.kind == tok_kind::identifier &&
            keywords().count(t.text) == 0) {
            // A following `<` or `::` means this is still part of a type.
            if (i + 1 < toks.size() && (is_punct(toks[i + 1], "<") ||
                                        is_punct(toks[i + 1], "::"))) {
                ++i;
                continue;
            }
            return i;
        }
        break;
    }
    return toks.size();
}

// ---------------------------------------------------------------------------
// Rule: nondet-source

const std::set<std::string>& banned_type_names() {
    // Any appearance of these identifiers is nondeterministic by
    // construction: hardware entropy and wall-clock time have no place in
    // a simulator whose trials must be bit-identical across runs, hosts
    // and thread counts. Use bluescale::rng (seeded, counter-derived
    // substreams) and cycle_t simulation time instead.
    static const std::set<std::string> k = {
        "random_device",
        "system_clock",
        "steady_clock",
        "high_resolution_clock",
    };
    return k;
}

const std::set<std::string>& banned_call_names() {
    static const std::set<std::string> k = {
        "rand", "srand", "time", "getenv", "clock", "gettimeofday",
        "clock_gettime",
    };
    return k;
}

void check_nondet_source(const lexed_file& file, std::vector<finding>& out) {
    // The analysis service's profile mode is the one sanctioned consumer
    // of host time: wall-clock request deadlines for live deployments,
    // mutually exclusive with virtual-time deadlines. The sanction is
    // surgical -- src/svc/ only, and only inside the body of a function
    // whose name starts with `profile_` -- so the deterministic
    // virtual-time path can never reach a host clock by accident.
    std::vector<std::pair<std::size_t, std::size_t>> profile_ranges;
    if (path_contains(file.path, "/svc/")) {
        profile_ranges =
            function_body_ranges(file, [](const std::string& name) {
                return name.rfind("profile_", 0) == 0;
            });
    }
    const auto sanctioned = [&](std::size_t idx) {
        for (const auto& [b, e] : profile_ranges) {
            if (idx >= b && idx < e) return true;
        }
        return false;
    };
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const token& t = toks[i];
        if (t.kind != tok_kind::identifier) continue;
        if (sanctioned(i)) continue;
        if (banned_type_names().count(t.text) != 0) {
            // Member access like `cfg.system_clock_mhz` lexes as one
            // identifier and never lands here; `foo.steady_clock` would,
            // but a member *named* after a clock is worth flagging too.
            out.push_back({file.path, t.line, "nondet-source",
                           "'" + t.text +
                               "' is a banned nondeterminism source; seed a "
                               "bluescale::rng / use cycle_t simulation time "
                               "instead"});
            continue;
        }
        if (banned_call_names().count(t.text) == 0) continue;
        if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
        // Decide call vs declaration vs member from the left context.
        if (i > 0) {
            const token& p = toks[i - 1];
            if (is_punct(p, ".") || is_punct(p, "->")) continue; // member
            if (is_punct(p, "::")) {
                // Qualified: only std:: / :: (global) qualify libc.
                const bool std_qual =
                    i >= 2 && is_ident(toks[i - 2], "std");
                const bool global_qual =
                    i < 2 || toks[i - 2].kind != tok_kind::identifier;
                if (!std_qual && !global_qual) continue;
            } else if (p.kind == tok_kind::identifier &&
                       keywords().count(p.text) == 0) {
                continue; // `rng rand(seed)` -- a declaration; libc-shadow's
            } else if (is_punct(p, "&") || is_punct(p, "*") ||
                       is_punct(p, ">")) {
                continue; // tail of a declarator type
            }
        }
        out.push_back({file.path, t.line, "nondet-source",
                       "call to '" + t.text +
                           "' breaks trial reproducibility; derive values "
                           "from the trial seed (bluescale::rng / substream) "
                           "instead"});
    }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter

void collect_unordered(const lexed_file& file, tree_context& ctx) {
    static const std::set<std::string> kinds = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != tok_kind::identifier ||
            kinds.count(toks[i].text) == 0) {
            continue;
        }
        if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "<")) continue;
        const std::size_t after = skip_template_args(toks, i + 1);
        const std::size_t name = declared_name_index(toks, after);
        if (name >= toks.size()) continue;
        // Require a declarator context: name followed by ; = { ( , or ).
        if (name + 1 < toks.size()) {
            const token& n = toks[name + 1];
            if (!(is_punct(n, ";") || is_punct(n, "=") || is_punct(n, "{") ||
                  is_punct(n, "(") || is_punct(n, ",") || is_punct(n, ")"))) {
                continue;
            }
        }
        ctx.unordered_names.insert(toks[name].text);
    }
}

void check_unordered_iter(const lexed_file& file, const tree_context& ctx,
                          std::vector<finding>& out) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        // Range-for whose range expression mentions an unordered name.
        if (is_ident(toks[i], "for") && i + 1 < toks.size() &&
            is_punct(toks[i + 1], "(")) {
            int depth = 0;
            std::size_t colon = 0;
            std::size_t close_idx = 0;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                if (is_punct(toks[j], "(")) ++depth;
                if (is_punct(toks[j], ")") && --depth == 0) {
                    close_idx = j;
                    break;
                }
                if (depth == 1 && is_punct(toks[j], ":") && colon == 0) {
                    colon = j;
                }
            }
            if (colon != 0 && close_idx != 0) {
                for (std::size_t j = colon + 1; j < close_idx; ++j) {
                    if (toks[j].kind == tok_kind::identifier &&
                        ctx.unordered_names.count(toks[j].text) != 0) {
                        out.push_back(
                            {file.path, toks[i].line, "unordered-iter",
                             "range-for over unordered container '" +
                                 toks[j].text +
                                 "': iteration order is unspecified and "
                                 "poisons stats/CSV determinism; use "
                                 "std::map / a sorted vector, or suppress "
                                 "with a justification if order provably "
                                 "cannot reach output"});
                        break;
                    }
                }
            }
        }
        // Explicit iterator loops: name.begin() / name.cbegin() etc.
        if (toks[i].kind == tok_kind::identifier &&
            ctx.unordered_names.count(toks[i].text) != 0 &&
            i + 2 < toks.size() && is_punct(toks[i + 1], ".")) {
            const std::string& m = toks[i + 2].text;
            if (m == "begin" || m == "end" || m == "cbegin" ||
                m == "cend" || m == "rbegin" || m == "rend") {
                out.push_back(
                    {file.path, toks[i].line, "unordered-iter",
                     "iterator walk of unordered container '" + toks[i].text +
                         "': iteration order is unspecified and poisons "
                         "stats/CSV determinism; use std::map / a sorted "
                         "vector, or suppress with a justification"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: float-cycle

[[nodiscard]] bool cycle_like_name(const std::string& name) {
    const auto ends_with = [&](std::string_view suf) {
        return name.size() >= suf.size() &&
               std::string_view(name).substr(name.size() - suf.size()) ==
                   suf;
    };
    return ends_with("_cycle") || ends_with("_cycles") ||
           ends_with("_cycle_") || ends_with("_cycles_") ||
           ends_with("_budget") || ends_with("_budget_") ||
           ends_with("_deadline") || ends_with("_deadline_");
}

const std::set<std::string>& integer_type_names() {
    static const std::set<std::string> k = {
        "int",      "long",      "short",    "unsigned", "size_t",
        "uint8_t",  "uint16_t",  "uint32_t", "uint64_t", "int8_t",
        "int16_t",  "int32_t",   "int64_t",  "uintptr_t","ptrdiff_t",
        "client_id_t", "task_id_t", "request_id_t",
    };
    return k;
}

[[nodiscard]] bool member_style(const std::string& name) {
    return !name.empty() && name.back() == '_';
}

void collect_typed_names(const lexed_file& file, tree_context& ctx) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const token& t = toks[i];
        if (t.kind != tok_kind::identifier) continue;
        const bool cyc = t.text == "cycle_t";
        const bool flt = t.text == "double" || t.text == "float";
        const bool integral = integer_type_names().count(t.text) != 0;
        if (!cyc && !flt && !integral) continue;
        // `static_cast<double>(x)` must not register 'x' -- the cast *is*
        // the sanctioned idiom. Casts lex as  static_cast < double > ( ...
        if (i >= 2 && is_punct(toks[i - 1], "<")) continue;
        const std::size_t name = declared_name_index(toks, i + 1);
        if (name >= toks.size()) continue;
        if (name + 1 < toks.size()) {
            const token& n = toks[name + 1];
            if (!(is_punct(n, ";") || is_punct(n, "=") || is_punct(n, "{") ||
                  is_punct(n, ",") || is_punct(n, ")") ||
                  is_punct(n, "("))) {
                continue;
            }
        }
        const std::string& declared = toks[name].text;
        typed_names& scope = member_style(declared)
                                 ? ctx.members
                                 : ctx.locals_by_file[file.path];
        if (cyc) {
            scope.cycle.insert(declared);
        } else if (flt) {
            scope.flt.insert(declared);
        } else {
            scope.integer.insert(declared);
        }
    }
}

enum class arith_side { neither, cycle, flt };

[[nodiscard]] arith_side lookup(const typed_names& scope,
                                const std::string& name, bool* found) {
    const bool cyc = scope.cycle.count(name) != 0;
    const bool flt = scope.flt.count(name) != 0;
    const bool integral = scope.integer.count(name) != 0;
    *found = cyc || flt || integral;
    // Conflicting declarations (same name, different types) are ambiguous
    // from tokens alone -- stay silent rather than guess.
    if (cyc && !flt) return arith_side::cycle;
    if (flt && !cyc && !integral) return arith_side::flt;
    return arith_side::neither;
}

[[nodiscard]] arith_side classify(const lexed_file& file, const token& t,
                                  const tree_context& ctx) {
    if (t.kind == tok_kind::number) {
        return t.is_float ? arith_side::flt : arith_side::neither;
    }
    if (t.kind != tok_kind::identifier) return arith_side::neither;
    if (t.text == "cycle_t") return arith_side::cycle;
    bool found = false;
    if (member_style(t.text)) {
        const arith_side side = lookup(ctx.members, t.text, &found);
        if (found) return side;
    } else {
        const auto it = ctx.locals_by_file.find(file.path);
        if (it != ctx.locals_by_file.end()) {
            const arith_side side = lookup(it->second, t.text, &found);
            if (found) return side;
        }
    }
    // Fallback for names we never saw declared (cross-library members,
    // accessor calls): counter-style suffixes are cycle-valued by project
    // convention.
    return cycle_like_name(t.text) ? arith_side::cycle : arith_side::neither;
}

/// Resolves the operand to the right of an operator to its significant
/// identifier: follows `a.b->c::d` chains to the last component, so
/// `result.x += m.x` classifies `x`, not `m`.
[[nodiscard]] std::size_t resolve_operand(const std::vector<token>& toks,
                                          std::size_t j) {
    if (j >= toks.size() || toks[j].kind != tok_kind::identifier) return j;
    while (j + 2 < toks.size() &&
           (is_punct(toks[j + 1], ".") || is_punct(toks[j + 1], "->") ||
            is_punct(toks[j + 1], "::")) &&
           toks[j + 2].kind == tok_kind::identifier) {
        j += 2;
    }
    return j;
}

void check_float_cycle(const lexed_file& file, const tree_context& ctx,
                       std::vector<finding>& out) {
    // Real-valued arithmetic on cycle counters silently rounds and is
    // platform-fragile; the analysis/ and hwcost/ layers do it on purpose
    // (sbf/utilization math), everywhere else cycle math must stay integral
    // with explicit static_casts at the stats boundary.
    if (path_contains(file.path, "/analysis/") ||
        path_contains(file.path, "/hwcost/")) {
        return;
    }
    static const std::set<std::string> arith = {"+", "-", "*", "/", "%",
                                                "+=", "-=", "*=", "/=", "="};
    const auto& toks = file.tokens;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        const token& op = toks[i];
        if (op.kind != tok_kind::punct || arith.count(op.text) == 0) {
            continue;
        }
        const std::size_t r = resolve_operand(toks, i + 1);
        const arith_side lhs = classify(file, toks[i - 1], ctx);
        const arith_side rhs = classify(file, toks[r], ctx);
        const bool mixed = (lhs == arith_side::cycle &&
                            rhs == arith_side::flt) ||
                           (lhs == arith_side::flt &&
                            rhs == arith_side::cycle);
        if (!mixed) continue;
        if (op.text == "=" && lhs != arith_side::cycle) {
            continue; // `double d = n_cycles;` widens losslessly enough--
                      // the lossy direction is writing back into a counter
        }
        out.push_back(
            {file.path, op.line, "float-cycle",
             "floating-point value mixed into cycle/budget arithmetic ('" +
                 toks[i - 1].text + " " + op.text + " " + toks[r].text +
                 "'); keep counters integral and static_cast at the "
                 "stats/analysis boundary"});
    }
}

// ---------------------------------------------------------------------------
// Rule: libc-shadow

const std::set<std::string>& libc_names() {
    static const std::set<std::string> k = {
        "rand",  "srand",  "random", "time",   "clock",  "getenv",
        "setenv","system", "abort",  "exit",   "signal", "raise",
        "read",  "write",  "open",   "close",  "link",   "unlink",
        "remove","malloc", "calloc", "free",   "div",
    };
    return k;
}

void check_libc_shadow(const lexed_file& file, std::vector<finding>& out) {
    const auto& toks = file.tokens;
    for (std::size_t i = 1; i < toks.size(); ++i) {
        const token& t = toks[i];
        if (t.kind != tok_kind::identifier || libc_names().count(t.text) == 0)
            continue;
        const token& p = toks[i - 1];
        // Declaration heuristic: preceded by the tail of a type
        // (identifier, type keyword, >, &, *, &&) and followed by a
        // declarator continuation.
        const bool typeish_prev =
            (p.kind == tok_kind::identifier && keywords().count(p.text) == 0) ||
            type_keywords().count(p.text) != 0 || is_punct(p, ">") ||
            is_punct(p, "&") || is_punct(p, "*") || is_punct(p, "&&");
        if (!typeish_prev) continue;
        if (is_punct(p, ".") || is_punct(p, "->") || is_punct(p, "::"))
            continue;
        if (i + 1 >= toks.size()) continue;
        const token& n = toks[i + 1];
        const bool declarator_next =
            is_punct(n, "(") || is_punct(n, "=") || is_punct(n, "{") ||
            is_punct(n, ";") || is_punct(n, ",") || is_punct(n, ")") ||
            is_punct(n, "[");
        if (!declarator_next) continue;
        out.push_back(
            {file.path, t.line, "libc-shadow",
             "identifier '" + t.text +
                 "' shadows the libc function of the same name; a later "
                 "edit that drops the declaration silently rebinds to the "
                 "(nondeterministic) libc symbol -- rename it"});
    }
}

// ---------------------------------------------------------------------------
// Rule: metrics-bypass

const std::set<std::string>& stat_field_names() {
    // The counter-struct fields that were public mutable state before the
    // obs migration. A `stats_.issued += 1` that compiles today is a
    // regression to the old API: the write bypasses the obs registry, so
    // it never reaches snapshots, merges or the CSV exporters.
    static const std::set<std::string> k = {
        "issued",          "completed",        "missed",
        "abandoned",       "missed_beyond_margin",
        "retries",         "timeouts",         "failed_responses",
        "retry_exhausted", "stale_responses",  "shed_cycles",
        "shed_deferrals",  "reconfigurations", "windows_checked",
        "violating_windows","supply_shortfall_alarms",
        "deadline_alarms", "shed_events",      "restore_events",
        "shed_client_cycles","hard_misses",    "best_effort_misses",
        "degrade_events",  "recovery_events",  "degraded_se_cycles",
        "serviced",        "ecc_retries",      "uncorrected_errors",
        "storm_cycles",    "forwarded",        "forwarded_budgeted",
        "fault_stall_cycles","degraded_cycles",
    };
    return k;
}

[[nodiscard]] bool owner_is_stat_holder(const token& t) {
    return t.kind == tok_kind::identifier &&
           (member_style(t.text) || t.text == "this");
}

void check_metrics_bypass(const lexed_file& file, std::vector<finding>& out) {
    // The obs layer owns metric storage and export; stats/ holds the
    // sanctioned low-level formatters (csv_writer, table). Everywhere
    // else, stat values must flow through obs handles and leave through
    // the obs exporters.
    if (path_contains(file.path, "/obs/") ||
        path_contains(file.path, "/stats/")) {
        return;
    }
    // Lint tooling and test code are not stat emitters -- a CLI's
    // interface IS stdout, and tests legitimately stream scratch files
    // and diagnostics -- so the raw-stream check is scoped to the
    // simulation trees. Direct counter-field writes stay policed
    // everywhere. Lint fixtures opt back in: they live under tests/ but
    // exist precisely to seed rule violations.
    const bool stream_scope =
        (!path_contains(file.path, "/tools/") &&
         !path_contains(file.path, "/tests/")) ||
        path_contains(file.path, "lint/fixtures");
    static const std::set<std::string> stream_names = {"ofstream", "ostream",
                                                       "cout", "cerr"};
    static const std::set<std::string> mutators = {"=", "+=", "-=", "++",
                                                   "--"};
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const token& t = toks[i];
        // (a) Raw stream emission: hand-rolled stat CSV/log writers were
        // the pre-obs idiom and silently fork the export format.
        if (stream_scope && t.kind == tok_kind::identifier &&
            stream_names.count(t.text) != 0) {
            out.push_back(
                {file.path, t.line, "metrics-bypass",
                 "raw std::" + t.text +
                     " use outside src/obs//src/stats/: stat emission must "
                     "go through the obs exporters "
                     "(snapshot::write_csv / trace_export); suppress with "
                     "a justification for genuinely non-metric output"});
            continue;
        }
        if (t.kind != tok_kind::punct || mutators.count(t.text) == 0) {
            continue;
        }
        // (b) Direct counter-struct field mutation. Member-style owners
        // (`stats_.issued += 1`, `this->counters_.missed++`) are the old
        // public-field API; value aggregation into locals/results
        // (`out.retries += m.retries`) is legitimate and skipped.
        const token* field = nullptr;
        const token* owner = nullptr;
        if (i >= 3 && toks[i - 1].kind == tok_kind::identifier &&
            (is_punct(toks[i - 2], ".") || is_punct(toks[i - 2], "->"))) {
            field = &toks[i - 1];
            owner = &toks[i - 3];
        } else if ((t.text == "++" || t.text == "--") && i + 3 < toks.size() &&
                   (is_punct(toks[i + 2], ".") ||
                    is_punct(toks[i + 2], "->")) &&
                   toks[i + 3].kind == tok_kind::identifier) {
            // Prefix form: ++owner.field -- walk the access chain to its
            // last component so `++this->stats_.issued` resolves too.
            std::size_t j = i + 1;
            while (j + 2 < toks.size() &&
                   (is_punct(toks[j + 1], ".") ||
                    is_punct(toks[j + 1], "->")) &&
                   toks[j + 2].kind == tok_kind::identifier) {
                owner = &toks[j];
                j += 2;
            }
            field = &toks[j];
        }
        if (field == nullptr || owner == nullptr) continue;
        if (stat_field_names().count(field->text) == 0) continue;
        if (!owner_is_stat_holder(*owner)) continue;
        out.push_back(
            {file.path, t.line, "metrics-bypass",
             "direct write to stat counter field '" + field->text +
                 "' ('" + owner->text + "." + field->text + " " + t.text +
                 " ...') bypasses the obs registry; mutate through an "
                 "obs::counter/gauge handle so snapshots and exports see "
                 "it"});
    }
}

// ---------------------------------------------------------------------------
// Rule: cycle-step

/// Half-open token-index ranges covering the bodies of functions named
/// next_event, wake_horizon, or response_horizon -- the horizon API,
/// i.e. the places that are *supposed* to reason in `now + k` terms.
/// Works for both inline definitions
/// (`cycle_t next_event(cycle_t now) const override { ... }`) and
/// out-of-line ones (`cycle_t widget::next_event(cycle_t now) const {`);
/// a `;` between the parameter list and any `{` marks a declaration and
/// yields no range.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
horizon_body_ranges(const lexed_file& file) {
    return function_body_ranges(file, [](const std::string& name) {
        return name == "next_event" || name == "wake_horizon" ||
               name == "response_horizon";
    });
}

void check_cycle_step(const lexed_file& file, std::vector<finding>& out) {
    // Hand-rolled `now + 1` / `now_ - 2` cycle stepping in model code is
    // a cadence decision the event engine cannot see: the component will
    // be skipped while quiescent and the hardcoded step silently never
    // happens. Cadence arithmetic belongs in next_event()/wake_horizon()
    // (whose bodies are exempt -- they exist to own it). The sim kernel
    // implements the wake protocol itself, and bench/examples drivers
    // fabricate synthetic timestamps, so those trees are out of scope.
    if (path_contains(file.path, "/sim/") ||
        path_contains(file.path, "/bench/") ||
        path_contains(file.path, "/examples/")) {
        return;
    }
    const auto ranges = horizon_body_ranges(file);
    const auto sanctioned = [&](std::size_t idx) {
        for (const auto& [b, e] : ranges) {
            if (idx >= b && idx < e) return true;
        }
        return false;
    };
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        const token& t = toks[i];
        if (t.kind != tok_kind::identifier ||
            (t.text != "now" && t.text != "now_")) {
            continue;
        }
        const token& op = toks[i + 1];
        if (!is_punct(op, "+") && !is_punct(op, "-")) continue;
        const token& lit = toks[i + 2];
        if (lit.kind != tok_kind::number || lit.is_float) continue;
        if (sanctioned(i)) continue;
        out.push_back(
            {file.path, t.line, "cycle-step",
             "hardcoded cycle step '" + t.text + " " + op.text + " " +
                 lit.text +
                 "' outside next_event()/wake_horizon(): the event engine "
                 "cannot see ad-hoc cadence arithmetic -- move it into the "
                 "horizon API, or suppress with a justification for "
                 "dataflow timestamps"});
    }
}

// ---------------------------------------------------------------------------
// Rule: include-guard

void check_include_guard(const lexed_file& file, std::vector<finding>& out) {
    if (!is_header(file.path)) return;
    const auto& toks = file.tokens;
    for (const token& t : toks) {
        if (t.kind == tok_kind::pp_directive) {
            if (t.text == "#pragma once" ||
                t.text.rfind("#pragma once", 0) == 0) {
                return; // guard precedes all other directives/code: OK
            }
            out.push_back(
                {file.path, t.line, "include-guard",
                 "header must open with '#pragma once' (project convention; "
                 "classic #ifndef guards are not used here), found '" +
                     t.text + "' first"});
            return;
        }
        // Any code token before a guard means the guard is missing/late.
        out.push_back({file.path, t.line, "include-guard",
                       "header has code before '#pragma once'"});
        return;
    }
    out.push_back({file.path, 1, "include-guard",
                   "header is missing '#pragma once'"});
}

// ---------------------------------------------------------------------------
// Rule family: hotpath-* (call-graph gated)
//
// These rules run only inside function bodies the call graph marked
// reachable from the simulation hot-path roots (see callgraph.hpp). They
// police the O(1)-per-tick contract: no heap growth, no blocking
// synchronization, no exceptions, no stream/file I/O on any code a
// tick()/commit()/next_event() can reach. Sanctioned idioms by
// construction: reserve-then-emplace in setup code (setup is not
// reachable from the roots, so it is never checked), obs counter/gauge
// handle increments (inc/add are not in any banned set -- the handles
// are the O(1) metric path), and assert() (compiled out of release
// builds, the approved contract-violation idiom).

const std::set<std::string>& hot_alloc_calls() {
    static const std::set<std::string> k = {
        "make_unique", "make_shared", "malloc", "calloc", "realloc",
    };
    return k;
}

const std::set<std::string>& hot_alloc_members() {
    // Growable-container mutators: any of these on a hot path can trip a
    // reallocation and an unbounded copy. reserve() is in the list on
    // purpose -- reserving inside a tick IS the allocation being hidden.
    static const std::set<std::string> k = {
        "push_back", "emplace_back", "push_front", "emplace_front",
        "resize",    "reserve",      "shrink_to_fit",
        "insert",    "emplace",      "append",
    };
    return k;
}

const std::set<std::string>& hot_lock_types() {
    static const std::set<std::string> k = {
        "mutex",          "recursive_mutex",    "timed_mutex",
        "shared_mutex",   "shared_timed_mutex", "lock_guard",
        "unique_lock",    "scoped_lock",        "shared_lock",
        "condition_variable", "condition_variable_any",
    };
    return k;
}

const std::set<std::string>& hot_lock_members() {
    static const std::set<std::string> k = {
        "lock",     "unlock",     "try_lock",   "wait",
        "wait_for", "wait_until", "notify_one", "notify_all",
    };
    return k;
}

const std::set<std::string>& hot_io_names() {
    static const std::set<std::string> k = {
        "cout",     "cerr",        "clog",        "printf",  "fprintf",
        "fputs",    "fputc",       "fwrite",      "fopen",   "fclose",
        "puts",     "putchar",     "ofstream",    "ifstream","fstream",
        "ostringstream", "istringstream", "stringstream",    "getline",
    };
    return k;
}

void check_hotpath(const lexed_file& file, const tree_context& ctx,
                   bool alloc_on, bool lock_on, bool throw_on, bool io_on,
                   std::vector<finding>& out) {
    const auto hot = ctx.graph.hot_defs_in(file.path);
    if (hot.empty()) return;
    const auto& toks = file.tokens;
    // Nested local definitions can sit inside an enclosing hot body; dedup
    // by token index so overlapping ranges report each site once.
    std::set<std::pair<std::size_t, std::string>> flagged;
    const auto flag = [&](std::size_t idx, const char* rule,
                          const std::string& what, const function_def& def,
                          const char* advice) {
        if (!flagged.insert({idx, rule}).second) return;
        out.push_back(
            {file.path, toks[idx].line, rule,
             what + " inside hot function '" + def.name + "' (" +
                 def.reached_via + "); " + advice});
    };
    for (const function_def* def : hot) {
        const std::size_t end = std::min(def->body_end, toks.size());
        for (std::size_t i = def->body_begin; i < end; ++i) {
            const token& t = toks[i];
            if (t.kind != tok_kind::identifier) continue;
            const bool member_ctx =
                i > 0 && (is_punct(toks[i - 1], ".") ||
                          is_punct(toks[i - 1], "->"));
            const bool call_next =
                i + 1 < toks.size() && (is_punct(toks[i + 1], "(") ||
                                        is_punct(toks[i + 1], "<"));
            if (alloc_on) {
                if (t.text == "new") {
                    flag(i, "hotpath-alloc", "'new' allocates", *def,
                         "hot-path work must be O(1) per tick: pre-size or "
                         "pool the storage at assembly time, or suppress "
                         "with a justification for bounded/amortized cases");
                } else if (!member_ctx && call_next &&
                           hot_alloc_calls().count(t.text) != 0) {
                    flag(i, "hotpath-alloc", "'" + t.text + "' allocates",
                         *def,
                         "hot-path work must be O(1) per tick: allocate at "
                         "assembly time and reuse, or suppress with a "
                         "justification for bounded/amortized cases");
                } else if (member_ctx && call_next &&
                           hot_alloc_members().count(t.text) != 0) {
                    flag(i, "hotpath-alloc",
                         "growable-container '" + t.text + "'", *def,
                         "a reallocation here is unbounded work on the "
                         "tick path: reserve at assembly time and assert "
                         "the bound, or suppress with a justification");
                }
            }
            if (lock_on) {
                if (!member_ctx && hot_lock_types().count(t.text) != 0) {
                    flag(i, "hotpath-lock",
                         "'" + t.text + "' synchronizes", *def,
                         "the tick path must stay lock-free: components "
                         "are single-threaded within a trial -- move "
                         "synchronization to the harness boundary");
                } else if (member_ctx && call_next &&
                           hot_lock_members().count(t.text) != 0) {
                    flag(i, "hotpath-lock",
                         "blocking call '" + t.text + "'", *def,
                         "the tick path must never block: move waits to "
                         "the harness boundary, or suppress with a "
                         "justification for non-blocking namesakes");
                }
            }
            if (throw_on && t.text == "throw") {
                flag(i, "hotpath-throw", "'throw'", *def,
                     "exception unwinding is unbounded control flow on "
                     "the tick path: assert() contract violations or "
                     "return a status instead");
            }
            if (io_on && hot_io_names().count(t.text) != 0) {
                flag(i, "hotpath-io", "stream/file use of '" + t.text + "'",
                     *def,
                     "the tick path must not touch streams or files: "
                     "record through obs counters/trace and export after "
                     "the run");
            }
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Registry

const std::vector<rule_info>& all_rules() {
    static const std::vector<rule_info> rules = {
        {"nondet-source",
         "bans wall-clock/entropy APIs (std::random_device, rand/srand, "
         "time, chrono clocks, getenv): all randomness must come from the "
         "seeded bluescale::rng; under src/svc/ the bodies of profile_* "
         "functions are sanctioned (the service's wall-clock profile mode)"},
        {"unordered-iter",
         "flags iteration over std::unordered_{map,set} members: order is "
         "unspecified and must never feed stats/CSV output"},
        {"float-cycle",
         "flags double/float mixed directly into cycle_t/budget counter "
         "arithmetic outside analysis/ and hwcost/"},
        {"libc-shadow",
         "flags identifiers that shadow libc names (rand, time, clock, "
         "...): deleting the local silently rebinds to libc"},
        {"cycle-step",
         "flags hardcoded `now + k` cycle arithmetic in component code "
         "outside next_event()/wake_horizon() bodies: ad-hoc cadence math "
         "is invisible to the event engine"},
        {"metrics-bypass",
         "flags raw std::ostream stat emission and direct counter-struct "
         "field writes outside src/obs/ and src/stats/: metrics flow "
         "through obs handles and leave through the obs exporters"},
        {"include-guard",
         "headers must open with '#pragma once' before any code or other "
         "preprocessor directive"},
        {"hotpath-alloc",
         "flags heap growth (new, make_unique/make_shared, malloc, and "
         "push_back/resize/insert/... on growable containers) in functions "
         "the call graph marks reachable from the simulation hot-path "
         "roots (tick/commit/next_event/advance/on_activation, push/pop on "
         "the bounded queue classes): every tick must do O(1) work, so "
         "storage is pre-sized at assembly time (reserve-then-emplace in "
         "setup is sanctioned -- setup is not hot)"},
        {"hotpath-lock",
         "flags mutexes, lock guards, condition variables and "
         "wait/notify calls on the hot path: components are "
         "single-threaded within a trial and the tick path must never "
         "block"},
        {"hotpath-throw",
         "flags `throw` on the hot path: exception unwinding is unbounded "
         "control flow; assert() or status returns are the contract "
         "idioms"},
        {"hotpath-io",
         "flags stream/file I/O (cout/cerr, printf family, fstream, "
         "stringstream, getline) on the hot path, beyond what "
         "metrics-bypass already polices: emission goes through obs "
         "handles and leaves after the run"},
    };
    return rules;
}

bool known_rule(const std::string& id) {
    return std::any_of(all_rules().begin(), all_rules().end(),
                       [&](const rule_info& r) { return id == r.id; });
}

void collect(const lexed_file& file, tree_context& ctx) {
    collect_unordered(file, ctx);
    collect_typed_names(file, ctx);
    ctx.graph.add_file(file);
}

void finalize(tree_context& ctx) { ctx.graph.finalize(); }

void check(const lexed_file& file, const tree_context& ctx,
           const std::set<std::string>& enabled,
           std::vector<finding>& out) {
    const auto on = [&](const char* id) {
        return enabled.empty() || enabled.count(id) != 0;
    };
    std::vector<finding> raw;
    if (on("nondet-source")) check_nondet_source(file, raw);
    if (on("unordered-iter")) check_unordered_iter(file, ctx, raw);
    if (on("float-cycle")) check_float_cycle(file, ctx, raw);
    if (on("cycle-step")) check_cycle_step(file, raw);
    if (on("libc-shadow")) check_libc_shadow(file, raw);
    if (on("metrics-bypass")) check_metrics_bypass(file, raw);
    if (on("include-guard")) check_include_guard(file, raw);
    if (on("hotpath-alloc") || on("hotpath-lock") || on("hotpath-throw") ||
        on("hotpath-io")) {
        check_hotpath(file, ctx, on("hotpath-alloc"), on("hotpath-lock"),
                      on("hotpath-throw"), on("hotpath-io"), raw);
    }
    // Token order within each rule is already source order; interleave the
    // rules by line so a file's report reads top-to-bottom.
    std::stable_sort(raw.begin(), raw.end(),
                     [](const finding& a, const finding& b) {
                         return a.line < b.line;
                     });
    out.insert(out.end(), raw.begin(), raw.end());
}

} // namespace detlint
