// detlint rule registry: the project-specific determinism and
// real-time-safety invariants checked at lint time.
//
// Rules run in two phases so cross-file facts (e.g. "this member was
// declared std::unordered_map in the header") are visible when the .cpp
// that iterates it is checked:
//   1. collect(): every file contributes declared-name facts to a shared
//      tree_context;
//   2. check(): every file is scanned against the rules, consulting the
//      completed context.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "lexer.hpp"

namespace detlint {

struct finding {
    std::string path;
    std::uint32_t line = 0;
    std::string rule;
    std::string message;
};

/// Declared-name type facts for one scope (the whole tree for members,
/// one file for locals/parameters).
struct typed_names {
    std::set<std::string> cycle;   ///< declared cycle_t
    std::set<std::string> flt;     ///< declared double/float
    std::set<std::string> integer; ///< declared with an integer type
};

/// Facts gathered over the whole scanned tree before checking starts.
///
/// Member names (trailing underscore, the project's style) are tracked
/// globally so a header's declaration informs the .cpp that uses it;
/// locals and parameters are tracked per file -- generic names like `p`
/// or `hi` mean different things in different files, and cross-file
/// pooling of those would drown the float-cycle rule in false positives.
struct tree_context {
    /// Names declared with std::unordered_{map,set,multimap,multiset} type.
    std::set<std::string> unordered_names;
    typed_names members;
    std::map<std::string, typed_names> locals_by_file;
    /// Approximate intra-project call graph; finalize() computes the
    /// hot-path reachable set the hotpath-* rules check.
    call_graph graph;
};

struct rule_info {
    const char* id;
    const char* summary;
};

/// The rule catalogue, in reporting order.
[[nodiscard]] const std::vector<rule_info>& all_rules();

/// True if `id` names a known rule.
[[nodiscard]] bool known_rule(const std::string& id);

/// Phase 1: harvest declared-name facts from one file.
void collect(const lexed_file& file, tree_context& ctx);

/// Phase 1.5: runs once after every collect() and before any check() --
/// resolves the call graph and marks the hot-path reachable set.
void finalize(tree_context& ctx);

/// Phase 2: append findings for one file. Only rules whose id is in
/// `enabled` run (empty set = all rules). Findings are appended in token
/// order, so output is deterministic for a fixed file order.
void check(const lexed_file& file, const tree_context& ctx,
           const std::set<std::string>& enabled,
           std::vector<finding>& out);

} // namespace detlint
