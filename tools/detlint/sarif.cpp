#include "sarif.hpp"

#include <ostream>

namespace detlint {

namespace {

/// JSON string escaping: control characters, quotes and backslashes.
[[nodiscard]] std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

[[nodiscard]] std::string relative_uri(const std::string& path,
                                       const std::string& root_prefix) {
    std::string uri = path;
    if (!root_prefix.empty() &&
        uri.compare(0, root_prefix.size(), root_prefix) == 0) {
        uri.erase(0, root_prefix.size());
        while (!uri.empty() && uri.front() == '/') uri.erase(0, 1);
    }
    return uri;
}

} // namespace

void write_sarif(std::ostream& out, const std::vector<finding>& findings,
                 const std::string& root_prefix) {
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"detlint\",\n"
        << "          \"informationUri\": "
           "\"https://example.invalid/bluescale/tools/detlint\",\n"
        << "          \"rules\": [\n";
    const auto& rules = all_rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out << "            {\n"
            << "              \"id\": \"" << json_escape(rules[i].id)
            << "\",\n"
            << "              \"shortDescription\": { \"text\": \""
            << json_escape(rules[i].summary) << "\" }\n"
            << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    out << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const finding& f = findings[i];
        out << "        {\n"
            << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": { \"text\": \""
            << json_escape(f.message) << "\" },\n"
            << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": { \"uri\": \""
            << json_escape(relative_uri(f.path, root_prefix)) << "\" },\n"
            << "                \"region\": { \"startLine\": " << f.line
            << " }\n"
            << "              }\n"
            << "            }\n"
            << "          ]\n"
            << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    out << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
}

} // namespace detlint
