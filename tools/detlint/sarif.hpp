// Minimal SARIF 2.1.0 emitter for detlint findings, enough for GitHub
// code scanning to annotate PR diffs: one run, the full rule catalogue as
// reportingDescriptors, one result per unsuppressed finding with a
// file/line physical location.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rules.hpp"

namespace detlint {

/// Writes `findings` as a SARIF 2.1.0 log to `out`. Paths that start
/// with `root_prefix` are emitted relative to it (GitHub requires
/// repository-relative URIs to attach annotations); other paths pass
/// through unchanged. Output is deterministic: findings are emitted in
/// the order given, keys in a fixed order.
void write_sarif(std::ostream& out, const std::vector<finding>& findings,
                 const std::string& root_prefix);

} // namespace detlint
